"""Unit tests for the QueryIndices strategy (acquisition paths + counting)."""

import pytest

from repro import (
    AggregateSpec,
    CellRestriction,
    Comparison,
    IndexRegistry,
    Literal,
    MatchingPredicate,
    PlaceholderField,
    build_sequence_groups,
    counter_based_cuboid,
    inverted_index_cuboid,
)
from repro.core.inverted_index import (
    acquire_index,
    coarsen_template,
    refine_template_to_levels,
    rollup_by_merge_is_valid,
)
from repro.core.spec import PatternSymbol
from repro.core.stats import QueryStats
from repro.index.inverted import build_index
from repro.index.registry import base_template
from tests.conftest import figure8_spec, location_template, make_figure8_db


@pytest.fixture
def setup():
    db = make_figure8_db()
    groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
    return db, groups, groups.single_group(), IndexRegistry()


class TestRollupValidity:
    def test_no_repeats_is_valid(self):
        assert rollup_by_merge_is_valid(location_template(("X", "Y")))

    def test_repeats_invalid(self):
        assert not rollup_by_merge_is_valid(location_template(("X", "Y", "Y", "X")))

    def test_sliced_but_distinct_symbols_valid(self):
        sliced = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Pentagon")
        )
        assert rollup_by_merge_is_valid(sliced)


class TestTemplateLevelTransforms:
    def test_coarsen_fixed_translates(self):
        db = make_figure8_db()
        template = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Pentagon")
        )
        coarse = coarsen_template(
            template, {"X": "district", "Y": "district"}, db.schema
        )
        assert coarse.symbol("X").fixed == "D10"
        assert coarse.symbol("X").level == "district"

    def test_coarsen_within_collapses_to_fixed(self):
        db = make_figure8_db()
        template = location_template(("X",)).replace_symbol(
            "X",
            PatternSymbol("X", "location", "station", within=("district", "D10")),
        )
        coarse = coarsen_template(template, {"X": "district"}, db.schema)
        assert coarse.symbol("X").fixed == "D10"
        assert coarse.symbol("X").within is None

    def test_refine_fixed_becomes_within(self):
        db = make_figure8_db()
        district = location_template(("X",)).replace_symbol(
            "X", PatternSymbol("X", "location", "district", fixed="D10")
        )
        fine = refine_template_to_levels(district, {"X": "station"}, db.schema)
        assert fine.symbol("X").level == "station"
        assert fine.symbol("X").fixed is None
        assert fine.symbol("X").within == ("district", "D10")


class TestAcquisitionPaths:
    def test_exact_reuse(self, setup):
        db, groups, group, registry = setup
        template = location_template(("X", "Y"))
        registry.put(build_index(group, template, db.schema))
        stats = QueryStats()
        index = acquire_index(group, template, db.schema, registry, stats)
        assert stats.index_reused
        assert stats.sequences_scanned == 0
        assert index.verified

    def test_scratch_build_registers_base(self, setup):
        db, groups, group, registry = setup
        template = location_template(("X", "Y"))
        stats = QueryStats()
        acquire_index(group, template, db.schema, registry, stats)
        assert stats.sequences_scanned == 4
        assert registry.get_exact(group.key, base_template(template)) is not None

    def test_length_one_build(self, setup):
        db, groups, group, registry = setup
        template = location_template(("X",))
        stats = QueryStats()
        index = acquire_index(group, template, db.schema, registry, stats)
        assert len(index) == 5  # Figure 10's L1

    def test_join_chain_from_prefix(self, setup):
        db, groups, group, registry = setup
        pair = location_template(("X", "Y"))
        registry.put(build_index(group, base_template(pair), db.schema))
        template = location_template(("X", "Y", "Y", "X"))
        stats = QueryStats()
        index = acquire_index(group, template, db.schema, registry, stats)
        assert stats.index_joins == 2
        assert index.verified
        assert len(index) == 1  # only (P, W, W, P)

    def test_join_chain_caches_intermediates(self, setup):
        db, groups, group, registry = setup
        pair = location_template(("X", "Y"))
        registry.put(build_index(group, base_template(pair), db.schema))
        template = location_template(("X", "Y", "Y", "X"))
        acquire_index(group, template, db.schema, registry, QueryStats())
        # The verified L3 and L4 are cached; re-acquiring is free.
        stats = QueryStats()
        acquire_index(group, template, db.schema, registry, stats)
        assert stats.sequences_scanned == 0
        assert stats.index_reused

    def test_rollup_merge_path(self, setup):
        db, groups, group, registry = setup
        fine = location_template(("X", "Y"))
        registry.put(build_index(group, base_template(fine), db.schema))
        district = fine.replace_symbol(
            "Y", PatternSymbol("Y", "location", "district")
        )
        stats = QueryStats()
        index = acquire_index(group, district, db.schema, registry, stats)
        assert stats.sequences_scanned == 0  # pure merge
        assert set(index.get(("Wheaton", "D10"))) != set()

    def test_refine_path_scans_only_candidates(self, setup):
        db, groups, group, registry = setup
        district = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "district")
        ).replace_symbol("Y", PatternSymbol("Y", "location", "district"))
        registry.put(build_index(group, base_template(district), db.schema))
        fine = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Deanwood")
        )
        stats = QueryStats()
        index = acquire_index(group, fine, db.schema, registry, stats)
        # Only s4 sits in a D30-first coarse list, so only s4 is scanned.
        assert set(index.lists) == {("Deanwood", "Wheaton")}
        assert stats.sequences_scanned == 1


class TestCounting:
    def test_fast_path_zero_scans(self, setup):
        db, groups, group, registry = setup
        spec = figure8_spec(("X", "Y"))
        registry.put(build_index(group, base_template(spec.template), db.schema))
        stats = QueryStats()
        cuboid = inverted_index_cuboid(db, groups, spec, registry, stats)
        assert stats.sequences_scanned == 0
        truth = counter_based_cuboid(db, groups, spec)
        assert cuboid.to_dict() == truth.to_dict()

    def test_predicate_forces_general_path(self, setup):
        db, groups, group, registry = setup
        predicate = MatchingPredicate(
            ("x1", "y1"),
            Comparison(PlaceholderField("x1", "action"), "=", Literal("in")),
        )
        spec = figure8_spec(("X", "Y"), predicate=predicate)
        registry.put(build_index(group, base_template(spec.template), db.schema))
        stats = QueryStats()
        cuboid = inverted_index_cuboid(db, groups, spec, registry, stats)
        assert stats.sequences_scanned > 0
        truth = counter_based_cuboid(db, groups, spec)
        assert cuboid.to_dict() == truth.to_dict()

    def test_all_matched_counts_occurrences(self, setup):
        db, groups, group, registry = setup
        spec = figure8_spec(
            ("X", "Y"), restriction=CellRestriction.ALL_MATCHED
        )
        cuboid = inverted_index_cuboid(db, groups, spec, registry)
        truth = counter_based_cuboid(db, groups, spec)
        assert cuboid.to_dict() == truth.to_dict()

    def test_measure_aggregates_agree(self, setup):
        db, groups, group, registry = setup
        spec = figure8_spec(
            ("X", "Y"),
            aggregates=(AggregateSpec("COUNT"), AggregateSpec("SUM", "amount")),
        )
        cuboid = inverted_index_cuboid(db, groups, spec, registry)
        truth = counter_based_cuboid(db, groups, spec)
        assert cuboid.to_dict() == truth.to_dict()
