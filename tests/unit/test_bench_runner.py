"""Unit tests for the BENCH_*.json harness (benchmarks/run_all + compare)."""

from __future__ import annotations

import json

import pytest

from benchmarks.compare import compare, load
from benchmarks.run_all import BENCH_SCHEMA, machine_fingerprint, percentile


def make_document(p50_by_name, counters=None):
    """A minimal but schema-valid BENCH document for comparator tests."""
    return {
        "bench_schema": BENCH_SCHEMA,
        "benchmarks": {
            name: {
                "p50_ms": p50,
                "p95_ms": p50 * 1.2,
                "counters": dict(counters or {}),
            }
            for name, p50 in p50_by_name.items()
        },
    }


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([42.0], 0.95) == 42.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_p95_of_twenty(self):
        values = [float(i) for i in range(1, 21)]
        assert percentile(values, 0.95) == pytest.approx(19.05)


class TestMachineFingerprint:
    def test_has_required_keys(self):
        fingerprint = machine_fingerprint()
        assert set(fingerprint) >= {"platform", "python", "machine", "cpu_count"}
        assert fingerprint["cpu_count"] >= 1


class TestCompare:
    def test_identical_documents_are_clean(self):
        doc = make_document({"a": 10.0, "b": 50.0}, {"sequences_scanned": 7})
        lines, regressions, drifts = compare(doc, doc, 0.25, 2.0)
        assert regressions == []
        assert drifts == []
        assert any("a" in line for line in lines)

    def test_regression_past_threshold_flagged(self):
        base = make_document({"slow": 100.0})
        cand = make_document({"slow": 150.0})
        __, regressions, __d = compare(base, cand, 0.25, 2.0)
        assert regressions == ["slow"]

    def test_regression_within_threshold_passes(self):
        base = make_document({"slow": 100.0})
        cand = make_document({"slow": 120.0})
        __, regressions, __d = compare(base, cand, 0.25, 2.0)
        assert regressions == []

    def test_noise_floor_not_gated(self):
        base = make_document({"tiny": 0.5})
        cand = make_document({"tiny": 5.0})  # 10x slower but sub-floor
        lines, regressions, __d = compare(base, cand, 0.25, 2.0)
        assert regressions == []
        assert any("below noise floor" in line for line in lines)

    def test_counter_drift_detected_even_when_fast(self):
        base = make_document({"a": 100.0}, {"sequences_scanned": 10})
        cand = make_document({"a": 99.0}, {"sequences_scanned": 11})
        lines, regressions, drifts = compare(base, cand, 0.25, 2.0)
        assert regressions == []
        assert drifts == ["a"]
        assert any("counter drift" in line for line in lines)

    def test_missing_benchmark_is_a_drift(self):
        base = make_document({"a": 10.0, "gone": 10.0})
        cand = make_document({"a": 10.0})
        __, __r, drifts = compare(base, cand, 0.25, 2.0)
        assert drifts == ["gone"]

    def test_new_benchmark_is_reported_not_gated(self):
        base = make_document({"a": 10.0})
        cand = make_document({"a": 10.0, "fresh": 10.0})
        lines, regressions, drifts = compare(base, cand, 0.25, 2.0)
        assert regressions == [] and drifts == []
        assert any("new benchmark" in line for line in lines)


class TestLoad:
    def test_load_round_trips(self, tmp_path):
        doc = make_document({"a": 10.0})
        path = tmp_path / "BENCH_test.json"
        path.write_text(json.dumps(doc))
        assert load(path)["benchmarks"]["a"]["p50_ms"] == 10.0

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"bench_schema": 999, "benchmarks": {}}))
        with pytest.raises(SystemExit):
            load(path)

    def test_missing_benchmarks_section_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"bench_schema": BENCH_SCHEMA}))
        with pytest.raises(SystemExit):
            load(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            load(tmp_path / "nope.json")

    def test_committed_baseline_is_valid(self):
        from pathlib import Path

        baseline = Path(__file__).parents[2] / (
            "benchmarks/baselines/BENCH_baseline.json"
        )
        doc = load(baseline)
        assert doc["quick"] is True
        # 8 workload sections + the schema-2 micro-bench sections
        # (matcher_kernel_* and join_intersect_*) + the schema-3
        # segment-store sections (storage_attach_* / storage_scan_*)
        # + the schema-4 scatter-gather sections (shards_scatter_gather_n*)
        # + the schema-5 tracing sections (tracing_overhead_*)
        # + the schema-6 semantic-cache sections (cache_replay_*)
        assert len(doc["benchmarks"]) == 25
        for name, record in doc["benchmarks"].items():
            assert record["p50_ms"] >= 0
            if name.startswith(("join_intersect_", "storage_attach_")):
                continue
            assert record["counters"]["sequences_scanned"] >= 0
        # zero work-counter drift between the two representations
        assert (
            doc["benchmarks"]["storage_scan_segment"]["counters"]
            == doc["benchmarks"]["storage_scan_memory"]["counters"]
        )
        assert "queryset_a" in doc["crossover"]
