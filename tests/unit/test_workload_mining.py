"""Workload mining and the cuboid materialization advisor.

Covers the query-log miner (:mod:`repro.optimizer.workload`) — including
its tolerance of interleaved non-query lifecycle events and unparseable
lines — the benefit-per-byte cuboid advisor, and the ``solap advise
--log`` CLI path end to end.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro import QueryService, ServiceConfig
from repro.cli import main
from repro.obs.logging import QueryLogger, JsonLineFormatter
from repro.optimizer.advisor import advise_cuboid_materializations
from repro.optimizer.workload import (
    Workload,
    iter_events,
    mine_workload,
    replay_specs,
)
from tests.conftest import figure8_spec, make_figure8_db


def query_line(digest, wall_ms, cache_answer="miss", ql=None, cells=10):
    return json.dumps(
        {
            "event": "query_finished",
            "spec_digest": digest,
            "wall_ms": wall_ms,
            "engine_ms": wall_ms * 0.9,
            "strategy": "CB",
            "cache_answer": cache_answer,
            "query_ql": ql,
            "cells": cells,
        }
    )


class TestMinerTolerance:
    """Satellite (f): the loader survives real, messy logs."""

    def test_interleaved_lifecycle_events_are_skipped_not_fatal(self):
        source = [
            json.dumps({"event": "service_started", "workers": 4}),
            query_line("aaa", 10.0),
            json.dumps({"event": "session_evicted", "session_id": "s1"}),
            json.dumps({"event": "index_built", "bytes": 1024}),
            query_line("aaa", 1.0, cache_answer="exact"),
            json.dumps({"event": "slow_query", "query_id": "q7"}),
        ]
        workload = mine_workload(source)
        assert workload.queries == 2
        assert workload.skipped_events == 4
        assert workload.skipped_lines == 0
        assert workload.by_spec["aaa"].count == 2

    def test_blank_and_garbage_lines_are_counted_not_raised(self):
        source = "\n".join(
            [
                "",
                "not json at all {{{",
                query_line("bbb", 5.0),
                "   ",
                json.dumps(["a", "bare", "list"]),
                query_line("bbb", 5.0, cache_answer="derived:p_roll_up"),
            ]
        )
        workload = mine_workload(source)
        assert workload.queries == 2
        assert workload.skipped_lines == 2  # garbage + non-dict JSON
        assert workload.by_spec["bbb"].cache_answers == {
            "miss": 1,
            "derived": 1,
        }

    def test_query_finished_without_digest_is_skipped(self):
        source = [json.dumps({"event": "query_finished", "wall_ms": 3.0})]
        workload = mine_workload(source)
        assert workload.queries == 0
        assert workload.skipped_events == 1

    def test_reads_from_a_file_path(self, tmp_path):
        log = tmp_path / "queries.jsonl"
        log.write_text(query_line("ccc", 7.5) + "\n\nnoise\n")
        workload = mine_workload(str(log))
        assert workload.queries == 1
        assert workload.skipped_lines == 1

    def test_iter_events_accepts_parsed_dicts(self):
        docs = [{"event": "query_finished", "spec_digest": "d"}]
        assert list(iter_events(docs)) == [(docs[0], True)]


class TestSpecStats:
    def test_cold_latency_excludes_cache_hits(self):
        source = [
            query_line("s1", 100.0, cache_answer="miss"),
            query_line("s1", 0.5, cache_answer="exact"),
            query_line("s1", 2.0, cache_answer="derived:slice_global"),
            query_line("s1", 300.0, cache_answer="miss"),
        ]
        stats = mine_workload(source).by_spec["s1"]
        assert stats.count == 4
        assert stats.cold_wall_ms == [100.0, 300.0]
        assert stats.mean_cold_wall_ms == pytest.approx(200.0)
        assert stats.mean_wall_ms == pytest.approx(402.5 / 4)

    def test_mean_cold_falls_back_to_overall_mean(self):
        source = [query_line("s2", 4.0, cache_answer="exact")]
        stats = mine_workload(source).by_spec["s2"]
        assert stats.cold_wall_ms == []
        assert stats.mean_cold_wall_ms == pytest.approx(4.0)

    def test_top_orders_by_total_wall(self):
        source = [
            query_line("cheap", 1.0),
            query_line("hot", 50.0),
            query_line("hot", 50.0),
        ]
        workload = mine_workload(source)
        assert [s.digest for s in workload.top(2)] == ["hot", "cheap"]


class TestCuboidAdvisor:
    def test_only_cold_specs_are_advised(self):
        source = [
            query_line("cold", 80.0, cache_answer="miss", cells=50),
            query_line("warm", 80.0, cache_answer="exact", cells=50),
        ]
        recs = advise_cuboid_materializations(mine_workload(source))
        assert [r.digest for r in recs] == ["cold"]
        assert recs[0].cold_answers == 1
        assert recs[0].benefit_seconds == pytest.approx(0.08)

    def test_benefit_per_byte_ordering(self):
        # "dense" saves the same time in far fewer cells -> advised first
        source = [
            query_line("sparse", 100.0, cells=100_000),
            query_line("dense", 100.0, cells=10),
        ]
        recs = advise_cuboid_materializations(mine_workload(source))
        assert [r.digest for r in recs] == ["dense", "sparse"]
        assert recs[0].benefit_per_byte > recs[1].benefit_per_byte

    def test_budget_excludes_oversized_cuboids(self):
        source = [
            query_line("huge", 100.0, cells=1_000_000),
            query_line("tiny", 100.0, cells=10),
        ]
        recs = advise_cuboid_materializations(
            mine_workload(source), byte_budget=64 * 1024
        )
        assert [r.digest for r in recs] == ["tiny"]

    def test_empty_workload_advises_nothing(self):
        assert advise_cuboid_materializations(Workload()) == []


class TestServiceLogRoundTrip:
    """The service's own query_finished records mine and replay cleanly."""

    def run_service(self, stream, repeat=2):
        logger = logging.getLogger("solap-test-workload-mining")
        logger.handlers.clear()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLineFormatter())
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
        db = make_figure8_db()
        qlog = QueryLogger(logger=logger)
        with QueryService(db, ServiceConfig(), query_logger=qlog) as service:
            for __ in range(repeat):
                service.execute(figure8_spec(("X", "Y")), "cb")
        logger.handlers.clear()
        return db

    def test_mined_stats_match_served_traffic(self):
        stream = io.StringIO()
        self.run_service(stream, repeat=3)
        workload = mine_workload(stream.getvalue())
        assert workload.queries == 3
        (stats,) = workload.by_spec.values()
        assert stats.count == 3
        assert stats.cache_answers.get("exact", 0) >= 1
        assert len(stats.cold_wall_ms) == 1  # only the first was cold
        assert stats.ql and "CUBOID BY" in stats.ql
        # lifecycle events (admitted/started/cache-hit) interleave freely
        assert workload.skipped_events > 0

    def test_logged_ql_replays_to_the_same_digest(self):
        stream = io.StringIO()
        db = self.run_service(stream)
        pairs = replay_specs(stream.getvalue(), db.schema)
        assert len(pairs) == 1
        digest, spec = pairs[0]
        from repro.obs.logging import spec_digest

        assert spec_digest(spec) == digest


class TestAdviseCli:
    @pytest.fixture
    def dataset(self, tmp_path):
        out = tmp_path / "transit"
        code = main(
            [
                "generate", "transit", "--out", str(out),
                "--cards", "20", "--days", "2", "--seed", "3",
            ]
        )
        assert code == 0
        return out

    def test_advise_requires_some_workload(self, dataset, capsys):
        assert main(["advise", str(dataset)]) == 2
        assert "provide workload" in capsys.readouterr().out

    def test_advise_from_log_file(self, dataset, tmp_path, capsys):
        log = tmp_path / "queries.jsonl"
        log.write_text(
            "\n".join(
                [
                    json.dumps({"event": "session_evicted", "id": "s0"}),
                    query_line("deadbeef0001", 40.0, cells=200),
                    "garbage line",
                    query_line("deadbeef0001", 0.2, cache_answer="exact"),
                ]
            )
        )
        assert main(["advise", str(dataset), "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "query log: 2 queries over 1 distinct spec(s)" in out
        assert "1 non-query events, 1 unparseable lines skipped" in out
        assert "advised cuboid materialization" in out

    def test_advise_log_zero_budget(self, dataset, tmp_path, capsys):
        log = tmp_path / "queries.jsonl"
        log.write_text(query_line("deadbeef0002", 40.0, cells=200))
        assert main(
            ["advise", str(dataset), "--log", str(log), "--budget-mb", "0"]
        ) == 0
        assert (
            "no cuboid materializations advised within the budget"
            in capsys.readouterr().out
        )
