"""Consistent-hash shard planner: stability, determinism, edge cases."""

import subprocess
import sys

import pytest

from repro.shard.planner import DEFAULT_REPLICAS, ShardPlanner, stable_hash


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("card-17") == stable_hash("card-17")
        assert stable_hash(("a", 3)) == stable_hash(("a", 3))

    def test_distinct_keys_differ(self):
        values = {stable_hash(f"key-{i}") for i in range(1000)}
        assert len(values) == 1000

    def test_cross_process_determinism(self):
        # hash() randomizes per process under PYTHONHASHSEED; stable_hash
        # must not, or workers would disagree with the coordinator about
        # shard ownership.
        expected = [stable_hash(f"card-{i}") for i in range(8)]
        script = (
            "from repro.shard.planner import stable_hash;"
            "print([stable_hash(f'card-{i}') for i in range(8)])"
        )
        for seed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            )
            assert eval(out.stdout) == expected


class TestShardPlanner:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)
        with pytest.raises(ValueError):
            ShardPlanner(2, replicas=0)

    def test_every_key_lands_in_range(self):
        planner = ShardPlanner(4)
        for i in range(500):
            assert 0 <= planner.shard_of(f"key-{i}") < 4

    def test_single_shard_owns_everything(self):
        planner = ShardPlanner(1)
        assert {planner.shard_of(i) for i in range(100)} == {0}

    def test_assignment_is_stable(self):
        planner = ShardPlanner(3)
        first = [planner.shard_of(f"key-{i}") for i in range(200)]
        second = [planner.shard_of(f"key-{i}") for i in range(200)]
        assert first == second

    def test_all_shards_populated_at_scale(self):
        planner = ShardPlanner(8)
        owners = {planner.shard_of(f"key-{i}") for i in range(2000)}
        assert owners == set(range(8))

    def test_growth_moves_bounded_fraction_to_new_shard_only(self):
        # The consistent-hashing contract: going N -> N+1 shards reassigns
        # only the keys the new shard captures; nothing moves between
        # pre-existing shards.
        keys = [f"card-{i}" for i in range(3000)]
        for n in (2, 4, 8):
            before = ShardPlanner(n)
            after = ShardPlanner(n + 1)
            moved = 0
            for key in keys:
                old, new = before.shard_of(key), after.shard_of(key)
                if old != new:
                    moved += 1
                    assert new == n, (
                        f"key moved between pre-existing shards: {old}->{new}"
                    )
            # Expect ~1/(n+1); allow generous slack for hash variance.
            assert moved / len(keys) < 2.5 / (n + 1)
            assert moved > 0

    def test_assign_partitions_and_preserves_order(self):
        planner = ShardPlanner(4)
        items = [(f"key-{i}", i) for i in range(100)]
        assignment = planner.assign(items)
        recovered = sorted(x for xs in assignment.values() for x in xs)
        assert recovered == list(range(100))
        for shard, members in assignment.items():
            assert members == sorted(members)  # input order kept per shard
            assert 0 <= shard < 4

    def test_assign_empty_input(self):
        planner = ShardPlanner(4)
        assert planner.assign([]) == {}
        assert planner.skew({}) == 1.0

    def test_empty_shards_absent_from_assignment(self):
        # One key cannot populate 8 shards; absent shards must not appear
        # as empty lists (the coordinator would schedule dead tasks).
        planner = ShardPlanner(8)
        assignment = planner.assign([("only-key", "payload")])
        assert len(assignment) == 1
        ((shard, members),) = assignment.items()
        assert members == ["payload"]
        assert shard == planner.shard_of("only-key")

    def test_skew_of_even_and_uneven_assignments(self):
        planner = ShardPlanner(2)
        assert planner.skew({0: [1, 2], 1: [3, 4]}) == 1.0
        assert planner.skew({0: [1, 2, 3, 4]}) == 2.0

    def test_same_keys_same_shards_across_instances(self):
        a = ShardPlanner(5)
        b = ShardPlanner(5)
        for i in range(300):
            assert a.shard_of(i) == b.shard_of(i)

    def test_replicas_default(self):
        assert ShardPlanner(2).replicas == DEFAULT_REPLICAS
