"""Edge cases: empty databases, degenerate sequences, exotic spec shapes."""


from repro import (
    EventDatabase,
    SOLAPEngine,
    )
from repro.core import operations as ops
from repro.extensions import iceberg_inverted_index, online_cuboid
from tests.conftest import figure8_spec, make_transit_schema, make_figure8_db


def empty_db():
    return EventDatabase(make_transit_schema())


class TestEmptyDatabase:
    def test_cb_returns_empty_cuboid(self):
        cuboid, stats = SOLAPEngine(empty_db()).execute(
            figure8_spec(("X", "Y")), "cb"
        )
        assert len(cuboid) == 0
        assert stats.sequences_scanned == 0

    def test_ii_returns_empty_cuboid(self):
        cuboid, __ = SOLAPEngine(empty_db()).execute(
            figure8_spec(("X", "Y")), "ii"
        )
        assert len(cuboid) == 0

    def test_cost_strategy_on_empty(self):
        cuboid, stats = SOLAPEngine(empty_db()).execute(
            figure8_spec(("X", "Y")), "cost"
        )
        assert len(cuboid) == 0

    def test_iceberg_on_empty(self):
        db = empty_db()
        engine = SOLAPEngine(db)
        spec = figure8_spec(("X", "Y"))
        groups = engine.sequence_groups(spec)
        assert len(iceberg_inverted_index(db, groups, spec, 2)) == 0

    def test_online_aggregation_on_empty(self):
        db = empty_db()
        engine = SOLAPEngine(db)
        spec = figure8_spec(("X", "Y"))
        groups = engine.sequence_groups(spec)
        estimates = list(online_cuboid(db, groups, spec))
        assert len(estimates) == 1
        assert estimates[0].total == 0
        assert estimates[0].fraction == 1.0

    def test_empty_group_set_tabulates(self):
        cuboid, __ = SOLAPEngine(empty_db()).execute(figure8_spec(("X", "Y")))
        text = cuboid.tabulate()
        assert "COUNT(*)" in text


class TestDegenerateSequences:
    def test_single_event_sequences(self):
        db = EventDatabase(make_transit_schema())
        for card in range(3):
            db.append(
                {"time": 0, "card": card, "location": "Pentagon", "action": "in"}
            )
        spec = figure8_spec(("X", "Y"))
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        assert len(cuboid) == 0  # no length-2 windows exist
        single, __ = SOLAPEngine(db).execute(figure8_spec(("X",)), "cb")
        assert single.count(("Pentagon",)) == 3

    def test_template_longer_than_any_sequence(self):
        db = make_figure8_db()
        spec = figure8_spec(("X", "Y", "Z", "X", "Y", "Z", "X"))
        for strategy in ("cb", "ii"):
            cuboid, __ = SOLAPEngine(db).execute(spec, strategy)
            assert len(cuboid) == 0, strategy

    def test_where_selecting_nothing(self):
        from repro import Comparison, EventField, Literal

        db = make_figure8_db()
        from dataclasses import replace

        spec = replace(
            figure8_spec(("X", "Y")),
            where=Comparison(EventField("card"), "=", Literal(-1)),
        )
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        assert len(cuboid) == 0

    def test_slice_to_nonexistent_value(self):
        db = make_figure8_db()
        spec = ops.slice_pattern(figure8_spec(("X", "Y")), "X", "Atlantis")
        for strategy in ("cb", "ii"):
            cuboid, __ = SOLAPEngine(db).execute(spec, strategy)
            assert len(cuboid) == 0, strategy

    def test_global_slice_to_nonexistent_group(self):
        db = make_figure8_db()
        spec = ops.slice_global(
            figure8_spec(("X", "Y"), group_by=(("location", "district"),)),
            "location",
            "D99",
        )
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        assert len(cuboid) == 0

    def test_all_wildcard_template(self):
        from repro.core.spec import CuboidSpec, PatternKind, PatternSymbol, PatternTemplate

        db = make_figure8_db()
        template = PatternTemplate(
            kind=PatternKind.SUBSTRING,
            positions=("_w1", "_w2"),
            symbols=(PatternSymbol.any("_w1"), PatternSymbol.any("_w2")),
        )
        spec = CuboidSpec(
            template=template,
            cluster_by=(("card", "card"),),
            sequence_by=(("time", True),),
        )
        cb, __ = SOLAPEngine(db).execute(spec, "cb")
        ii, __ = SOLAPEngine(db).execute(spec, "ii")
        # one dimensionless cell counting sequences of length >= 2
        assert cb.to_dict() == ii.to_dict()
        assert cb.count(()) == 4

    def test_groups_without_matches_absent(self):
        db = make_figure8_db()
        spec = ops.slice_pattern(
            figure8_spec(("X", "Y"), group_by=(("location", "district"),)),
            "X",
            "Deanwood",
        )
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        # only the D20 group (card 77 starts at Wheaton) contains Deanwood
        assert cuboid.group_keys() == (("D20",),)
