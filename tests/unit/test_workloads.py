"""Unit tests for the experiment drivers (QuerySets A/B/C, clickstream)."""

import pytest

from repro.bench.workloads import (
    run_clickstream_exploration,
    run_queryset_a,
    run_queryset_b,
    run_queryset_c,
)
from repro.datagen import (
    ClickstreamConfig,
    SyntheticConfig,
    generate_clickstream,
    generate_event_database,
)


@pytest.fixture(scope="module")
def db():
    return generate_event_database(SyntheticConfig(D=80, L=10, seed=99))


class TestQuerySetA:
    def test_labels_and_count(self, db):
        steps, __ = run_queryset_a(db, "cb", n_queries=3)
        assert [s.label for s in steps] == ["QA1", "QA2", "QA3"]

    def test_template_grows_by_slice_and_append(self, db):
        steps, __ = run_queryset_a(db, "cb", n_queries=3)
        # each follow-up query slices to one cell then appends one free
        # symbol, so cell counts after QA1 stay small
        assert steps[0].cells > steps[1].cells or steps[1].cells <= steps[0].cells

    def test_precompute_only_with_ii(self, db):
        __, pre_cb = run_queryset_a(db, "cb", n_queries=2, precompute=True)
        assert pre_cb.sequences_scanned == 0
        __, pre_ii = run_queryset_a(db, "ii", n_queries=2, precompute=True)
        assert pre_ii.sequences_scanned == 80

    def test_stops_on_empty_cuboid(self):
        empty = generate_event_database(SyntheticConfig(D=2, L=1, seed=1))
        steps, __ = run_queryset_a(empty, "cb", n_queries=5)
        assert len(steps) <= 5

    def test_coarse_level_runs(self, db):
        steps, __ = run_queryset_a(db, "cb", n_queries=2, level="group")
        assert len(steps) == 2


class TestQuerySetB:
    def test_three_steps_with_labels(self, db):
        steps, __ = run_queryset_b(db, "cb")
        assert [s.label for s in steps] == [
            "QB1",
            "QB2 (drill-down X)",
            "QB3 (roll-up Y)",
        ]

    def test_precompute_scans_once(self, db):
        __, pre = run_queryset_b(db, "ii")
        assert pre.sequences_scanned == 80


class TestQuerySetC:
    def test_template_chain(self, db):
        steps, __ = run_queryset_c(db, "cb")
        assert [s.label for s in steps] == [
            "QC1 (X,Y)",
            "QC2 (X,Y,Y)",
            "QC3 (X,Y,Y,X)",
        ]

    def test_cells_shrink_along_chain(self, db):
        steps, __ = run_queryset_c(db, "cb")
        assert steps[0].cells >= steps[1].cells >= steps[2].cells


class TestClickstreamExploration:
    def test_three_queries(self):
        db = generate_clickstream(ClickstreamConfig(n_sessions=200, seed=9))
        steps = run_clickstream_exploration(db, "cb")
        assert [s.label for s in steps] == ["Qa", "Qb", "Qc"]
        assert all(s.strategy == "CB" for s in steps)

    def test_qb_restricted_to_legwear_pages(self):
        db = generate_clickstream(ClickstreamConfig(n_sessions=300, seed=10))
        from repro import SOLAPEngine
        from repro.core import operations as ops
        from repro.datagen import two_step_spec

        qa = two_step_spec()
        qb = ops.p_drill_down(
            ops.slice_pattern(
                ops.slice_pattern(qa, "X", "Assortment"), "Y", "Legwear"
            ),
            "Y",
            db.schema,
        )
        cuboid, __ = SOLAPEngine(db).execute(qb, "cb")
        hierarchy = db.schema.hierarchy("page")
        for __g, (x, y), __v in cuboid:
            assert x == "Assortment"
            assert hierarchy.map_value(y, "page-category") == "Legwear"
