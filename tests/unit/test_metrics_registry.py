"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro import SOLAPEngine
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    BucketHistogram,
    MetricsRegistry,
    register_engine_metrics,
)
from tests.conftest import figure8_spec, make_figure8_db


class TestBucketHistogram:
    def test_observe_and_quantiles(self):
        hist = BucketHistogram(buckets=(0.01, 0.1, 1.0, float("inf")))
        for value in (0.005, 0.005, 0.05, 0.5):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(0.56)
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(1.0) == 1.0
        assert hist.max_observed == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            BucketHistogram(buckets=(1.0, 2.0))  # no +inf
        with pytest.raises(ValueError):
            BucketHistogram(buckets=(2.0, 1.0, float("inf")))  # unsorted

    def test_merge_bucket_wise(self):
        a = BucketHistogram(buckets=(0.01, 0.1, float("inf")))
        b = BucketHistogram(buckets=(0.01, 0.1, float("inf")))
        a.observe(0.005)
        b.observe(0.05)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.total == pytest.approx(5.055)
        assert a.max_observed == 5.0
        # b is untouched
        assert b.count == 2

    def test_merge_rejects_mismatched_buckets(self):
        a = BucketHistogram(buckets=(0.01, float("inf")))
        b = BucketHistogram(buckets=(0.02, float("inf")))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_merge_empty_is_identity(self):
        a = BucketHistogram()
        a.observe(0.2)
        before = (list(a.counts), a.total, a.count, a.max_observed)
        a.merge(BucketHistogram())
        assert (list(a.counts), a.total, a.count, a.max_observed) == before


class TestInstruments:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "help")
        family.inc()
        family.inc(2.5)
        assert family.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        family = MetricsRegistry().counter("t_total")
        with pytest.raises(ValueError):
            family.inc(-1)

    def test_callback_counter_pulls_at_read_time(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        family = registry.counter("pulled_total")
        child = family.attach_callback(lambda: state["n"])
        state["n"] = 7
        assert child.value == 7
        with pytest.raises(ValueError):
            child.inc()  # callback-backed counters are read-only

    def test_gauge_set_inc_dec_and_function(self):
        family = MetricsRegistry().gauge("g")
        family.set(10)
        child = family.labels()
        child.inc(5)
        child.dec(3)
        assert family.value == 12
        child.set_function(lambda: 99)
        assert family.value == 99
        child.set(1)  # explicit set overrides the callback
        assert family.value == 1

    def test_labelled_family_children_on_demand(self):
        family = MetricsRegistry().counter(
            "by_kind_total", labels=("kind",)
        )
        family.labels("a").inc()
        family.labels("a").inc()
        family.labels(kind="b").inc()
        assert family.labels("a").value == 2
        assert family.labels("b").value == 1
        children = family.children()
        assert [values for values, __ in children] == [("a",), ("b",)]

    def test_label_arity_and_name_validation(self):
        registry = MetricsRegistry()
        family = registry.counter("v_total", labels=("kind",))
        with pytest.raises(ValueError):
            family.labels()  # missing the label value
        with pytest.raises(ValueError):
            family.labels("a", "b")
        with pytest.raises(ValueError):
            family.labels(wrong="a")
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels=("0bad",))

    def test_histogram_child_observes(self):
        family = MetricsRegistry().histogram(
            "lat_seconds", buckets=(0.1, float("inf"))
        )
        family.observe(0.05)
        family.observe(0.5)
        snap = family.labels().snapshot()
        assert snap["count"] == 2
        assert snap["max_seconds"] == 0.5


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help", labels=("k",))
        b = registry.counter("x_total", "other help", labels=("k",))
        assert a is b
        assert len(registry) == 1

    def test_mismatched_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labels=("k",))

    def test_contains_unregister_clear(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        assert "x_total" in registry
        assert registry.unregister("x_total")
        assert not registry.unregister("x_total")
        registry.gauge("g")
        registry.clear()
        assert len(registry) == 0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.histogram("h_seconds").observe(0.1)
        registry.counter("by_total", labels=("k",)).labels("v").inc()
        doc = registry.snapshot()
        assert doc["c_total"] == {"type": "counter", "series": {"": 1.0}}
        assert doc["h_seconds"]["series"][""]["count"] == 1
        assert doc["by_total"]["series"]["k=v"] == 1.0

    def test_concurrent_increments_do_not_lose_updates(self):
        family = MetricsRegistry().counter("c_total")

        def hammer():
            for __ in range(1000):
                family.inc()

        threads = [threading.Thread(target=hammer) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert family.value == 4000


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("app_queries_total", "Queries served").inc(3)
        registry.gauge("app_sessions", "Live sessions").set(2)
        text = registry.render_prometheus()
        assert "# HELP app_queries_total Queries served\n" in text
        assert "# TYPE app_queries_total counter\n" in text
        assert "\napp_queries_total 3\n" in text
        assert "# TYPE app_sessions gauge\n" in text
        assert "\napp_sessions 2\n" in text
        assert text.endswith("\n")

    def test_labelled_samples_sorted_and_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("by_total", labels=("k",))
        family.labels("b").inc()
        family.labels("a").inc(2)
        family.labels('we"ird\n').inc()
        text = registry.render_prometheus()
        a = text.index('by_total{k="a"} 2')
        b = text.index('by_total{k="b"} 1')
        assert a < b
        assert 'by_total{k="we\\"ird\\n"} 1' in text

    def test_histogram_triple_with_cumulative_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 1.0, float("inf"))
        )
        family.observe(0.05)
        family.observe(0.5)
        family.observe(5.0)
        text = registry.render_prometheus()
        assert "# TYPE lat_seconds histogram\n" in text
        assert 'lat_seconds_bucket{le="0.1"} 1\n' in text
        assert 'lat_seconds_bucket{le="1"} 2\n' in text  # cumulative
        assert 'lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "lat_seconds_sum 5.55" in text
        assert "lat_seconds_count 3\n" in text

    def test_default_buckets_end_in_inf(self):
        assert DEFAULT_LATENCY_BUCKETS[-1] == float("inf")
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestEngineMetrics:
    def test_engine_families_track_query_work(self):
        engine = SOLAPEngine(make_figure8_db())
        registry = MetricsRegistry()
        register_engine_metrics(registry, engine)
        queries = registry.counter(
            "solap_engine_queries_total", labels=("strategy",)
        )
        assert queries.labels("cb").value == 0

        spec = figure8_spec(("X", "Y"))
        engine.execute(spec, "cb")
        assert queries.labels("cb").value == 1
        engine.execute(spec, "cb")  # cuboid-repository hit
        assert queries.labels("cache").value == 1

        text = registry.render_prometheus()
        assert 'solap_engine_queries_total{strategy="cb"} 1' in text
        assert "solap_engine_sequences_scanned_total" in text
        assert "solap_cuboid_repository_lookups_total" in text
        assert 'solap_cuboid_repository_lookups_total{outcome="hit"} 1' in text

    def test_registration_is_pull_based(self):
        engine = SOLAPEngine(make_figure8_db())
        registry = MetricsRegistry()
        register_engine_metrics(registry, engine)
        entries = registry.gauge("solap_sequence_cache_entries")
        before = entries.value
        engine.execute(figure8_spec(("X", "Y")), "cb")
        assert entries.value == before + 1  # read at scrape time
