"""Unit tests for cuboid diffing."""

import pytest

from repro import SCuboid, SOLAPEngine
from repro.reports import diff_cuboids
from tests.conftest import figure8_spec, make_figure8_db


def cuboid_with(cells):
    spec = figure8_spec(("X", "Y"))
    return SCuboid(
        spec, {((), cell): {"COUNT(*)": count} for cell, count in cells.items()}
    )


class TestDiff:
    def test_identical_cuboids(self):
        a = cuboid_with({("A", "B"): 3})
        diff = diff_cuboids(a, a)
        assert diff.is_empty
        assert diff.unchanged == 1
        assert "no differences" in diff.render()

    def test_added_removed_changed(self):
        old = cuboid_with({("A", "B"): 3, ("B", "C"): 2, ("C", "D"): 1})
        new = cuboid_with({("A", "B"): 5, ("B", "C"): 2, ("D", "E"): 7})
        diff = diff_cuboids(old, new)
        assert diff.added == {((), ("D", "E")): 7}
        assert diff.removed == {((), ("C", "D")): 1}
        assert diff.changed == {((), ("A", "B")): (3, 5)}
        assert diff.unchanged == 1

    def test_net_change(self):
        old = cuboid_with({("A", "B"): 3, ("C", "D"): 1})
        new = cuboid_with({("A", "B"): 5, ("D", "E"): 7})
        diff = diff_cuboids(old, new)
        assert diff.net_change() == pytest.approx(7 - 1 + (5 - 3))

    def test_top_movers_ranked_by_magnitude(self):
        old = cuboid_with({("A", "B"): 10, ("B", "C"): 1})
        new = cuboid_with({("A", "B"): 2, ("B", "C"): 3})
        movers = diff_cuboids(old, new).top_movers()
        assert movers[0][0] == ((), ("A", "B"))
        assert movers[0][1] == -8

    def test_render_mentions_counts(self):
        old = cuboid_with({("A", "B"): 1})
        new = cuboid_with({("A", "B"): 4, ("X", "Y"): 2})
        text = diff_cuboids(old, new).render()
        assert "+1 cells" in text
        assert "~1 changed" in text

    def test_diff_across_exploration_step(self):
        """Diffing a query against its day-sliced version shows the drop."""
        from repro.core import operations as ops

        db = make_figure8_db()
        engine = SOLAPEngine(db)
        spec = figure8_spec(("X", "Y"), group_by=(("location", "district"),))
        full, __ = engine.execute(spec, "cb")
        sliced, __ = engine.execute(
            ops.slice_global(spec, "location", "D10"), "cb"
        )
        diff = diff_cuboids(full, sliced)
        assert not diff.added  # slicing only removes
        assert diff.removed
        assert diff.net_change() < 0
