"""Unit tests for structured query logging (repro.obs.logging)."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro import QueryService, ServiceConfig
from repro.obs.logging import (
    LOG_SCHEMA,
    JsonLineFormatter,
    QueryLogger,
    configure_logging,
)
from tests.conftest import figure8_spec, make_figure8_db


@pytest.fixture
def capture():
    """A dedicated logger writing JSON lines into a StringIO."""
    stream = io.StringIO()
    logger = logging.getLogger("solap-test-capture")
    logger.handlers.clear()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    logger.propagate = False
    yield logger, stream
    logger.handlers.clear()


def lines(stream: io.StringIO) -> list:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLineFormatter:
    def test_round_trip_with_structured_fields(self, capture):
        logger, stream = capture
        logger.info("my_event", extra={"solap": {"query_id": "q1", "n": 3}})
        (doc,) = lines(stream)
        assert doc["event"] == "my_event"
        assert doc["level"] == "INFO"
        assert doc["log_schema"] == LOG_SCHEMA
        assert doc["query_id"] == "q1"
        assert doc["n"] == 3
        assert doc["ts"].endswith("+00:00")

    def test_non_serialisable_values_fall_back_to_repr(self, capture):
        logger, stream = capture
        logger.info("ev", extra={"solap": {"obj": object()}})
        (doc,) = lines(stream)
        assert doc["obj"].startswith("<object object")

    def test_exception_is_attached(self, capture):
        logger, stream = capture
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logger.exception("failed")
        (doc,) = lines(stream)
        assert doc["level"] == "ERROR"
        assert "RuntimeError: boom" in doc["exception"]


class TestConfigureLogging:
    def test_idempotent_per_stream(self):
        stream = io.StringIO()
        name = "solap-test-configure"
        logger = configure_logging(stream=stream, logger_name=name)
        again = configure_logging(stream=stream, logger_name=name)
        assert logger is again
        assert len(logger.handlers) == 1
        assert not logger.propagate
        logger.handlers.clear()


class TestQueryLogger:
    def test_events_drop_none_fields(self, capture):
        logger, stream = capture
        qlog = QueryLogger(logger=logger)
        qlog.query_started("q1", "auto", session_id=None)
        (doc,) = lines(stream)
        assert doc["event"] == "query_started"
        assert "session_id" not in doc

    def test_disabled_level_emits_nothing(self, capture):
        logger, stream = capture
        logger.setLevel(logging.ERROR)
        QueryLogger(logger=logger).query_admitted("q1", 0.001)
        assert stream.getvalue() == ""

    def test_rejection_and_timeout_are_warnings(self, capture):
        logger, stream = capture
        qlog = QueryLogger(logger=logger)
        qlog.query_rejected("q1", inflight=20, limit=20)
        qlog.query_timed_out("q2", budget_seconds=0.5, elapsed_seconds=0.7)
        docs = lines(stream)
        assert [d["event"] for d in docs] == [
            "query_rejected", "query_timed_out",
        ]
        assert all(d["level"] == "WARNING" for d in docs)
        assert docs[1]["budget_ms"] == 500.0


class TestServiceLifecycleLogging:
    def run_service(self, stream, slow_query_seconds=None, repeat=1):
        logger = logging.getLogger("solap-test-service")
        logger.handlers.clear()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLineFormatter())
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
        qlog = QueryLogger(
            logger=logger, slow_query_seconds=slow_query_seconds
        )
        config = ServiceConfig(slow_query_seconds=slow_query_seconds)
        with QueryService(
            make_figure8_db(), config, query_logger=qlog
        ) as service:
            for __ in range(repeat):
                service.execute(figure8_spec(("X", "Y")), "cb")
        logger.handlers.clear()

    def test_lifecycle_event_order(self):
        stream = io.StringIO()
        self.run_service(stream)
        events = [d["event"] for d in lines(stream)]
        assert events == ["query_admitted", "query_started", "query_finished"]

    def test_finished_record_fields(self):
        stream = io.StringIO()
        self.run_service(stream)
        finished = [
            d for d in lines(stream) if d["event"] == "query_finished"
        ]
        (doc,) = finished
        assert doc["query_id"] == "q000001"
        assert doc["strategy"] == "CB"
        assert doc["wall_ms"] >= 0
        assert doc["sequences_scanned"] > 0

    def test_repeat_hits_cuboid_cache_event(self):
        stream = io.StringIO()
        self.run_service(stream, repeat=2)
        events = [d["event"] for d in lines(stream)]
        assert "cuboid_cache_hit" in events

    def test_slow_query_round_trips_with_embedded_plan(self):
        stream = io.StringIO()
        # threshold 0 makes every query slow, and configuring it forces
        # tracing on so the EXPLAIN ANALYZE plan is always available
        self.run_service(stream, slow_query_seconds=0.0)
        slow = [d for d in lines(stream) if d["event"] == "slow_query"]
        (doc,) = slow
        assert doc["level"] == "WARNING"
        assert doc["threshold_ms"] == 0.0
        plan = doc["plan"]
        assert plan["plan_schema"] == 1
        assert plan["lines"][0]["depth"] == 0
        assert "EXPLAIN ANALYZE" in plan["lines"][0]["text"]
        # the whole record survived one json.dumps/json.loads round trip
        assert json.loads(json.dumps(doc)) == doc
