"""Unit tests for S-cuboid specifications (templates, predicates, aggregates)."""

import pytest

from repro import (
    AggregateScope,
    AggregateSpec,
    CellRestriction,
    Comparison,
    Literal,
    MatchingPredicate,
    PatternKind,
    PatternSymbol,
    PatternTemplate,
    PlaceholderField,
    SpecError,
)
from tests.conftest import figure8_spec, location_template, make_transit_schema


class TestPatternTemplate:
    def test_build_from_bindings(self):
        template = location_template(("X", "Y", "Y", "X"))
        assert template.length == 4
        assert template.n_dims == 2
        assert template.positions == ("X", "Y", "Y", "X")
        assert [s.name for s in template.symbols] == ["X", "Y"]

    def test_symbol_ids_canonical(self):
        template = location_template(("X", "Y", "Y", "X"))
        assert template.symbol_ids() == (0, 1, 1, 0)

    def test_repeated_and_restricted_flags(self):
        template = location_template(("X", "Y"))
        assert not template.has_repeated_symbols
        assert not template.has_restricted_symbols
        repeated = location_template(("X", "X"))
        assert repeated.has_repeated_symbols
        sliced = template.replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Pentagon")
        )
        assert sliced.has_restricted_symbols

    def test_signature_distinguishes_restrictions(self):
        template = location_template(("X", "Y"))
        sliced = template.replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Pentagon")
        )
        assert template.signature() != sliced.signature()
        assert template.domain_signature() == sliced.domain_signature()

    def test_signature_is_name_independent(self):
        a = location_template(("X", "Y"))
        b = location_template(("P", "Q"))
        assert a.signature() == b.signature()

    def test_position_symbols(self):
        template = location_template(("X", "Y", "Y", "X"))
        names = [s.name for s in template.position_symbols()]
        assert names == ["X", "Y", "Y", "X"]

    def test_unbound_position_raises(self):
        with pytest.raises(SpecError):
            PatternTemplate.substring(("X", "Y"), {"X": ("location", "station")})

    def test_unused_symbol_raises(self):
        with pytest.raises(SpecError):
            PatternTemplate(
                kind=PatternKind.SUBSTRING,
                positions=("X",),
                symbols=(
                    PatternSymbol("X", "location", "station"),
                    PatternSymbol("Y", "location", "station"),
                ),
            )

    def test_symbols_must_follow_first_appearance_order(self):
        with pytest.raises(SpecError):
            PatternTemplate(
                kind=PatternKind.SUBSTRING,
                positions=("X", "Y"),
                symbols=(
                    PatternSymbol("Y", "location", "station"),
                    PatternSymbol("X", "location", "station"),
                ),
            )

    def test_empty_template_raises(self):
        with pytest.raises(SpecError):
            PatternTemplate(kind=PatternKind.SUBSTRING, positions=(), symbols=())

    def test_unknown_symbol_lookup_raises(self):
        template = location_template(("X", "Y"))
        with pytest.raises(SpecError):
            template.symbol("Z")

    def test_validate_against_schema(self):
        schema = make_transit_schema()
        location_template(("X", "Y")).validate(schema)
        bad_level = PatternTemplate.substring(
            ("X",), {"X": ("location", "continent")}
        )
        with pytest.raises(Exception):
            bad_level.validate(schema)

    def test_validate_rejects_measure_symbol(self):
        schema = make_transit_schema()
        template = PatternTemplate.substring(("X",), {"X": ("amount", "amount")})
        with pytest.raises(SpecError):
            template.validate(schema)

    def test_validate_within_must_be_coarser(self):
        schema = make_transit_schema()
        template = location_template(("X",)).replace_symbol(
            "X",
            PatternSymbol(
                "X", "location", "station", within=("station", "Pentagon")
            ),
        )
        with pytest.raises(SpecError):
            template.validate(schema)

    def test_replace_symbol_renames_positions(self):
        template = location_template(("X", "Y", "Y", "X"))
        renamed = template.replace_symbol(
            "Y", PatternSymbol("W", "location", "station")
        )
        assert renamed.positions == ("X", "W", "W", "X")


class TestMatchingPredicate:
    def make_predicate(self, placeholders=("x1", "y1")):
        expr = Comparison(PlaceholderField("x1", "action"), "=", Literal("in"))
        return MatchingPredicate(placeholders, expr)

    def test_length_validation(self):
        template = location_template(("X", "Y"))
        self.make_predicate().validate(template)
        with pytest.raises(SpecError):
            self.make_predicate(("x1", "y1", "z1")).validate(template)

    def test_duplicate_placeholders_raise(self):
        with pytest.raises(SpecError):
            self.make_predicate(("x1", "x1"))

    def test_undeclared_placeholder_raises(self):
        expr = Comparison(PlaceholderField("zz", "action"), "=", Literal("in"))
        with pytest.raises(SpecError):
            MatchingPredicate(("x1", "y1"), expr)


class TestAggregateSpec:
    def test_count_star(self):
        agg = AggregateSpec("COUNT")
        assert agg.name == "COUNT(*)"

    def test_count_with_argument_raises(self):
        with pytest.raises(SpecError):
            AggregateSpec("COUNT", "amount")

    def test_sum_requires_argument(self):
        with pytest.raises(SpecError):
            AggregateSpec("SUM")

    def test_unknown_function_raises(self):
        with pytest.raises(SpecError):
            AggregateSpec("MEDIAN", "amount")

    def test_validate_measure(self):
        schema = make_transit_schema()
        AggregateSpec("SUM", "amount").validate(schema)
        with pytest.raises(SpecError):
            AggregateSpec("SUM", "location").validate(schema)

    def test_scope_rendering(self):
        agg = AggregateSpec("SUM", "amount", AggregateScope.SEQUENCE)
        assert "OVER SEQUENCE" in str(agg)


class TestCuboidSpec:
    def test_cache_key_stable_and_hashable(self):
        spec_a = figure8_spec(("X", "Y"))
        spec_b = figure8_spec(("X", "Y"))
        assert spec_a.cache_key() == spec_b.cache_key()
        assert hash(spec_a) == hash(spec_b)
        assert spec_a == spec_b

    def test_pipeline_key_ignores_cuboid_by(self):
        spec_a = figure8_spec(("X", "Y"))
        spec_b = figure8_spec(("X", "Y", "Y", "X"))
        assert spec_a.pipeline_key() == spec_b.pipeline_key()
        assert spec_a.cache_key() != spec_b.cache_key()

    def test_n_dims(self):
        spec = figure8_spec(("X", "Y", "Y", "X"))
        assert spec.n_dims == 2
        grouped = figure8_spec(
            ("X", "Y"), group_by=(("location", "district"),)
        )
        assert grouped.n_dims == 3

    def test_predicate_length_checked(self):
        expr = Comparison(PlaceholderField("x1", "action"), "=", Literal("in"))
        predicate = MatchingPredicate(("x1",), expr)
        with pytest.raises(SpecError):
            figure8_spec(("X", "Y"), predicate=predicate)

    def test_global_slice_bounds_checked(self):
        with pytest.raises(SpecError):
            figure8_spec(("X", "Y"), global_slice=((0, "D10"),))

    def test_needs_aggregates(self):
        with pytest.raises(SpecError):
            figure8_spec(("X", "Y"), aggregates=())

    def test_validate(self):
        schema = make_transit_schema()
        figure8_spec(("X", "Y")).validate(schema)

    def test_str_contains_clauses(self):
        spec = figure8_spec(
            ("X", "Y"), restriction=CellRestriction.ALL_MATCHED
        )
        text = str(spec)
        assert "CLUSTER BY" in text
        assert "SEQUENCE BY" in text
        assert "ALL-MATCHED" in text
