"""Unit tests for the SCuboid result object."""

from repro import SCuboid
from tests.conftest import figure8_spec


def make_cuboid(grouped=False):
    if grouped:
        spec = figure8_spec(("X", "Y"), group_by=(("location", "district"),))
        cells = {
            (("D10",), ("Pentagon", "Wheaton")): {"COUNT(*)": 5},
            (("D10",), ("Wheaton", "Pentagon")): {"COUNT(*)": 2},
            (("D20",), ("Pentagon", "Wheaton")): {"COUNT(*)": 1},
        }
    else:
        spec = figure8_spec(("X", "Y"))
        cells = {
            ((), ("Pentagon", "Wheaton")): {"COUNT(*)": 5},
            ((), ("Wheaton", "Pentagon")): {"COUNT(*)": 2},
            ((), ("Glenmont", "Pentagon")): {"COUNT(*)": 1},
        }
    return SCuboid(spec, cells)


class TestAccess:
    def test_len_counts_nonempty_cells(self):
        assert len(make_cuboid()) == 3

    def test_count_present_and_absent(self):
        cuboid = make_cuboid()
        assert cuboid.count(("Pentagon", "Wheaton")) == 5
        assert cuboid.count(("Atlantis", "Nowhere")) == 0

    def test_value_default_aggregate(self):
        cuboid = make_cuboid()
        assert cuboid.value(("Wheaton", "Pentagon")) == 2

    def test_value_absent_non_count_aggregate(self):
        cuboid = make_cuboid()
        assert cuboid.value(("Nothing", "Here"), aggregate="SUM(amount)") is None

    def test_grouped_access(self):
        cuboid = make_cuboid(grouped=True)
        assert cuboid.count(("Pentagon", "Wheaton"), ("D10",)) == 5
        assert cuboid.count(("Pentagon", "Wheaton"), ("D20",)) == 1


class TestSummaries:
    def test_group_and_cell_keys(self):
        cuboid = make_cuboid(grouped=True)
        assert cuboid.group_keys() == (("D10",), ("D20",))
        assert len(cuboid.cell_keys()) == 2
        assert cuboid.cell_keys(("D20",)) == (("Pentagon", "Wheaton"),)

    def test_total(self):
        assert make_cuboid().total() == 8

    def test_top_cells_ordering(self):
        top = make_cuboid().top_cells(2)
        assert top[0][1] == ("Pentagon", "Wheaton")
        assert top[0][2] == 5
        assert len(top) == 2

    def test_argmax(self):
        group, cell, value = make_cuboid().argmax()
        assert cell == ("Pentagon", "Wheaton") and value == 5

    def test_argmax_empty(self):
        cuboid = SCuboid(figure8_spec(("X", "Y")), {})
        assert cuboid.argmax() is None


class TestViewsAndTabulation:
    def test_restrict_by_group(self):
        cuboid = make_cuboid(grouped=True)
        view = cuboid.restrict(group_key=("D10",))
        assert len(view) == 2

    def test_restrict_by_cell_prefix(self):
        cuboid = make_cuboid()
        view = cuboid.restrict(cell_prefix=("Pentagon",))
        assert len(view) == 1

    def test_rows_and_header_align(self):
        cuboid = make_cuboid(grouped=True)
        header = cuboid.header()
        for row in cuboid.rows():
            assert len(row) == len(header)
        assert header[0] == "location@district"
        assert header[-1] == "COUNT(*)"

    def test_tabulate_contains_counts(self):
        text = make_cuboid().tabulate()
        assert "Pentagon" in text and "5" in text

    def test_tabulate_limit_reports_omissions(self):
        text = make_cuboid().tabulate(limit=1)
        assert "more cells" in text

    def test_tabulate_unsorted(self):
        text = make_cuboid().tabulate(sort_by_count=False)
        assert "Glenmont" in text

    def test_to_dict_is_copy(self):
        cuboid = make_cuboid()
        copy = cuboid.to_dict()
        copy[((), ("Pentagon", "Wheaton"))]["COUNT(*)"] = 0
        assert cuboid.count(("Pentagon", "Wheaton")) == 5

    def test_iteration_sorted(self):
        keys = [cell for __, cell, __unused in make_cuboid()]
        assert keys == sorted(keys)

    def test_to_csv(self, tmp_path):
        import csv

        path = tmp_path / "cuboid.csv"
        written = make_cuboid().to_csv(str(path))
        assert written == 3
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(make_cuboid().header())
        assert rows[1][-1] == "5"  # heaviest cell first

    def test_to_csv_unsorted(self, tmp_path):
        path = tmp_path / "cuboid.csv"
        make_cuboid().to_csv(str(path), sort_by_count=False)
        assert path.exists()
