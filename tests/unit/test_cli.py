"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

Q1 = """
SELECT COUNT(*) FROM Event
CLUSTER BY card-id AT individual, time AT day
SEQUENCE BY time ASCENDING
CUBOID BY SUBSTRING (X, Y)
  WITH X AS location AT station, Y AS location AT station
LEFT-MAXIMALITY (x1, y1)
  WITH x1.action = "in" AND y1.action = "out"
"""


@pytest.fixture
def dataset(tmp_path):
    out = tmp_path / "transit"
    code = main(
        [
            "generate",
            "transit",
            "--out",
            str(out),
            "--cards",
            "30",
            "--days",
            "2",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return out


@pytest.fixture
def queryfile(tmp_path):
    path = tmp_path / "q1.solap"
    path.write_text(Q1)
    return path


class TestGenerate:
    def test_generate_writes_dataset(self, dataset, capsys):
        assert (dataset / "schema.json").exists()
        assert (dataset / "events.jsonl").exists()

    def test_generate_synthetic(self, tmp_path, capsys):
        out = tmp_path / "syn"
        code = main(
            [
                "generate",
                "synthetic",
                "--out",
                str(out),
                "--sequences",
                "20",
                "--length",
                "6",
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out

    def test_generate_clickstream(self, tmp_path, capsys):
        out = tmp_path / "clicks"
        code = main(
            ["generate", "clickstream", "--out", str(out), "--sessions", "40"]
        )
        assert code == 0


class TestInfo:
    def test_info_prints_schema(self, dataset, capsys):
        assert main(["info", str(dataset)]) == 0
        out = capsys.readouterr().out
        assert "location: station -> district" in out
        assert "measures: amount" in out

    def test_info_missing_dataset(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope")]) == 2


class TestQuery:
    def test_query_prints_table_and_stats(self, dataset, queryfile, capsys):
        assert main(["query", str(dataset), str(queryfile)]) == 0
        out = capsys.readouterr().out
        assert "COUNT(*)" in out
        assert "sequences scanned" in out

    @pytest.mark.parametrize("strategy", ["cb", "ii", "cost"])
    def test_query_strategies(self, dataset, queryfile, capsys, strategy):
        code = main(
            ["query", str(dataset), str(queryfile), "--strategy", strategy]
        )
        assert code == 0

    def test_query_save_cuboid(self, dataset, queryfile, tmp_path, capsys):
        out_path = tmp_path / "cuboid.json"
        code = main(
            ["query", str(dataset), str(queryfile), "--save", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()

    def test_query_od_matrix(self, dataset, queryfile, capsys):
        code = main(["query", str(dataset), str(queryfile), "--od-matrix"])
        assert code == 0
        out = capsys.readouterr().out
        assert "O\\D" in out
        assert "total" in out

    def test_query_explain(self, dataset, queryfile, capsys):
        code = main(["query", str(dataset), str(queryfile), "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "S-OLAP query plan" in out
        assert "recommended strategy" in out

    def test_bad_query_reports_error(self, dataset, tmp_path, capsys):
        bad = tmp_path / "bad.solap"
        bad.write_text("SELECT NOTHING")
        assert main(["query", str(dataset), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestAdvise:
    def test_advise_recommends(self, dataset, queryfile, capsys):
        assert main(["advise", str(dataset), str(queryfile)]) == 0
        out = capsys.readouterr().out
        assert "recommended index" in out or "no indices" in out

    def test_advise_zero_budget(self, dataset, queryfile, capsys):
        code = main(
            ["advise", str(dataset), str(queryfile), "--budget-mb", "0"]
        )
        assert code == 0
        assert "no indices" in capsys.readouterr().out


class TestServiceStats:
    def test_text_report(self, dataset, queryfile, capsys):
        code = main(
            ["service-stats", str(dataset), str(queryfile), "--repeat", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "requests_total: 2" in out

    def test_json_format(self, dataset, queryfile, capsys):
        import json

        code = main(
            ["service-stats", str(dataset), str(queryfile),
             "--repeat", "1", "--format", "json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["queries_ok"] == 1
        assert "latency" in doc and "engine" in doc

    def test_prom_format(self, dataset, queryfile, capsys):
        code = main(
            ["service-stats", str(dataset), str(queryfile),
             "--repeat", "1", "--format", "prom"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE solap_service_requests_total counter" in out
        assert "solap_service_requests_total 1" in out
        assert 'solap_service_query_latency_seconds_bucket{le="+Inf"} 1' in out


class TestServeMetrics:
    def test_serves_workload_then_exits(self, dataset, queryfile, capsys):
        import json
        import re
        import threading
        import urllib.request

        # scrape the exporter mid-run: the --duration window keeps the
        # server alive after the workload finishes
        results = {}

        def run():
            results["code"] = main(
                ["serve-metrics", str(dataset), str(queryfile),
                 "--port", "0", "--repeat", "2", "--duration", "5"]
            )

        thread = threading.Thread(target=run)
        thread.start()
        url = None
        for __ in range(100):
            out = capsys.readouterr().out
            match = re.search(r"http://127\.0\.0\.1:\d+", out)
            if match:
                url = match.group(0)
                break
            thread.join(timeout=0.05)
        assert url is not None, "serve-metrics never printed its URL"
        with urllib.request.urlopen(url + "/healthz", timeout=5) as response:
            assert json.loads(response.read()) == {"status": "ok"}
        with urllib.request.urlopen(url + "/metrics", timeout=5) as response:
            body = response.read().decode()
        assert "solap_service_requests_total" in body
        thread.join(timeout=30)
        assert results["code"] == 0


class TestTrace:
    def test_trace_exports_worker_spans(self, dataset, queryfile, tmp_path):
        import json

        out = tmp_path / "trace.json"
        code = main(
            ["trace", str(dataset), str(queryfile),
             "--backend", "thread", "--shards", "2", "--workers", "2",
             "--out", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["trace_schema"] == 2
        assert doc["trace_id"]

        def walk(node):
            yield node
            for child in node.get("children", ()):
                yield from walk(child)

        nodes = list(walk(doc["root"]))
        origins = [n["origin"] for n in nodes if "origin" in n]
        assert sorted(o["shard"] for o in origins) == [0, 1]
        names = {n["name"] for n in nodes}
        for stage in ("worker.rebuild", "worker.match", "worker.fold"):
            assert stage in names

    def test_trace_requires_dataset_without_recent(self, capsys):
        assert main(["trace"]) == 2
        assert "dataset and queryfile" in capsys.readouterr().err

    def test_trace_recent_and_id_over_http(self, capsys):
        from repro.obs.httpd import MetricsServer
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.recorder import FlightRecorder
        from repro.obs.spans import Tracer, span

        recorder = FlightRecorder(capacity=4)
        with Tracer("query") as tracer:
            with span("aggregation"):
                pass

        class Stats:
            trace = tracer.root
            strategy = "CB"
            sequences_scanned = 3
            extra = {"shard_fanout": 2, "scan_backend": "thread"}
            plan = None

        entry_id = recorder.record(
            stats=Stats(), query_id="q7", wall_seconds=0.002
        )
        with MetricsServer(
            MetricsRegistry(), port=0, recorder=recorder
        ) as srv:
            assert main(["trace", "--recent", "--server", srv.url]) == 0
            out = capsys.readouterr().out
            assert entry_id in out
            assert "CB" in out

            assert main(
                ["trace", "--id", entry_id, "--server", srv.url]
            ) == 0
            import json

            doc = json.loads(capsys.readouterr().out)
            assert doc["summary"]["query_id"] == "q7"

            assert main(
                ["trace", "--id", "t999999", "--server", srv.url]
            ) == 2
            assert "t999999" in capsys.readouterr().err

    def test_trace_recent_unreachable_server(self, capsys):
        code = main(
            ["trace", "--recent", "--server", "http://127.0.0.1:1"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err
