"""Unit tests for the query-language parser."""

import pytest

from repro import CellRestriction, PatternKind, QueryLanguageError
from repro.events.expression import Between, Comparison, InSet, Or
from repro.ql import parse, parse_query
from tests.conftest import make_transit_schema

MINIMAL = """
SELECT COUNT(*) FROM Event
CLUSTER BY card AT card
SEQUENCE BY time ASCENDING
CUBOID BY SUBSTRING (X, Y)
  WITH X AS location AT station, Y AS location AT station
LEFT-MAXIMALITY (x1, y1)
"""

FULL = """
SELECT COUNT(*), SUM(amount) OVER SEQUENCE FROM Event
WHERE time >= 0 AND time < 100
CLUSTER BY card AT card
SEQUENCE BY time ASCENDING
SEQUENCE GROUP BY location AT district
CUBOID BY SUBSTRING (X, Y, Y, X)
  WITH X AS location AT station, Y AS location AT station
LEFT-MAXIMALITY (x1, y1, y2, x2)
  WITH x1.action = "in" AND y1.action = "out"
"""


class TestParsing:
    def test_minimal_query(self):
        spec = parse_query(MINIMAL)
        assert spec.template.positions == ("X", "Y")
        assert spec.template.kind is PatternKind.SUBSTRING
        assert spec.predicate is None  # placeholders without WITH = no-op
        assert spec.where is None
        assert spec.group_by == ()

    def test_full_query(self):
        schema = make_transit_schema()
        spec = parse_query(FULL, schema)
        assert len(spec.aggregates) == 2
        assert spec.aggregates[1].name == "SUM(amount)"
        assert spec.aggregates[1].scope.value == "SEQUENCE"
        assert spec.where is not None
        assert spec.group_by == (("location", "district"),)
        assert spec.predicate is not None
        assert spec.predicate.placeholders == ("x1", "y1", "y2", "x2")

    def test_subsequence_kind(self):
        spec = parse_query(MINIMAL.replace("SUBSTRING", "SUBSEQUENCE"))
        assert spec.template.kind is PatternKind.SUBSEQUENCE

    def test_restrictions(self):
        for keyword, restriction in (
            ("LEFT-MAXIMALITY", CellRestriction.LEFT_MAXIMALITY),
            ("LEFT-MAXIMALITY-DATA", CellRestriction.LEFT_MAXIMALITY_DATA),
            ("ALL-MATCHED", CellRestriction.ALL_MATCHED),
        ):
            spec = parse_query(MINIMAL.replace("LEFT-MAXIMALITY", keyword))
            assert spec.restriction is restriction

    def test_descending_and_default_order(self):
        spec = parse_query(MINIMAL.replace("ASCENDING", "DESCENDING"))
        assert spec.sequence_by == (("time", False),)
        spec = parse_query(MINIMAL.replace(" ASCENDING", ""))
        assert spec.sequence_by == (("time", True),)

    def test_fixed_binding(self):
        text = MINIMAL.replace(
            "X AS location AT station",
            'X AS location AT station = "Pentagon"',
        )
        spec = parse_query(text)
        assert spec.template.symbol("X").fixed == "Pentagon"

    def test_within_binding(self):
        text = MINIMAL.replace(
            "X AS location AT station",
            'X AS location AT station WITHIN district = "D10"',
        )
        spec = parse_query(text)
        assert spec.template.symbol("X").within == ("district", "D10")

    def test_parsed_query_structure(self):
        parsed = parse(FULL)
        assert parsed.source == "Event"
        assert parsed.pattern_kind == "SUBSTRING"
        assert parsed.positions == ["X", "Y", "Y", "X"]
        assert len(parsed.bindings) == 2

    def test_expression_forms(self):
        text = MINIMAL.replace(
            "CLUSTER BY",
            'WHERE location IN ("Pentagon", "Wheaton") '
            "OR time BETWEEN 1 AND 5 OR NOT time = 3\nCLUSTER BY",
        )
        spec = parse_query(text)
        assert isinstance(spec.where, Or)
        kinds = {type(term) for term in spec.where.terms}
        assert InSet in kinds and Between in kinds

    def test_parenthesised_expressions(self):
        text = MINIMAL.replace(
            "CLUSTER BY", "WHERE (time = 1 OR time = 2) AND time != 3\nCLUSTER BY"
        )
        spec = parse_query(text)
        assert spec.where.evaluate.__name__  # it is an Expr

    def test_comparison_operand_order(self):
        text = MINIMAL.replace("CLUSTER BY", "WHERE 5 <= time\nCLUSTER BY")
        spec = parse_query(text)
        assert isinstance(spec.where, Comparison)


class TestErrors:
    def test_missing_select(self):
        with pytest.raises(QueryLanguageError):
            parse_query("FROM Event")

    def test_placeholder_count_mismatch(self):
        bad = MINIMAL.replace("(x1, y1)", "(x1, y1, z1)")
        with pytest.raises(QueryLanguageError):
            parse_query(bad)

    def test_unbound_symbol(self):
        bad = MINIMAL.replace(", Y AS location AT station", "")
        with pytest.raises(Exception):
            parse_query(bad)

    def test_bad_restriction(self):
        bad = MINIMAL.replace("LEFT-MAXIMALITY", "RIGHT-MAXIMALITY")
        with pytest.raises(QueryLanguageError):
            parse_query(bad)

    def test_event_field_in_matching_predicate(self):
        bad = FULL.replace('x1.action = "in"', 'action = "in"')
        with pytest.raises(QueryLanguageError):
            parse_query(bad)

    def test_placeholder_in_where(self):
        bad = FULL.replace("WHERE time >= 0", 'WHERE x1.time >= 0')
        with pytest.raises(QueryLanguageError):
            parse_query(bad)

    def test_trailing_garbage(self):
        with pytest.raises(QueryLanguageError):
            parse_query(MINIMAL + " EXTRA")

    def test_count_requires_star(self):
        bad = MINIMAL.replace("COUNT(*)", "COUNT(amount)")
        with pytest.raises(QueryLanguageError):
            parse_query(bad)

    def test_schema_validation(self):
        schema = make_transit_schema()
        bad = MINIMAL.replace("AT station", "AT continent")
        with pytest.raises(Exception):
            parse_query(bad, schema)
