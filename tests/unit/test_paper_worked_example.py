"""The paper's worked example, figure by figure (Figures 8, 10, 12, 13, 14).

These tests pin the implementation to the exact numbers printed in the
paper for the four-sequence group of Figure 8.
"""

import pytest

from repro import (
    Comparison,
    CuboidSpec,
    Literal,
    MatchingPredicate,
    PlaceholderField,
    SOLAPEngine,
    build_sequence_groups,
)
from repro.index.inverted import (
    build_index,
    join_indices,
    prefix_template,
    verify_index,
)
from repro.index.registry import base_template
from tests.conftest import figure8_spec, location_template, make_figure8_db


@pytest.fixture
def group():
    db = make_figure8_db()
    groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
    return db, groups.single_group()


def sids_by_card(group):
    """Map the paper's s1..s4 labels to our sids."""
    by_card = {seq.cluster_key[0]: seq.sid for seq in group}
    return {
        "s1": by_card[688],
        "s2": by_card[23456],
        "s3": by_card[1012],
        "s4": by_card[77],
    }


class TestFigure10Indices:
    def test_l1_lists(self, group):
        db, grp = group
        sid = sids_by_card(grp)
        template = location_template(("X",))
        index = build_index(grp, base_template(template), db.schema)
        expect = {
            ("Clarendon",): {sid["s3"], sid["s4"]},
            ("Deanwood",): {sid["s4"]},
            ("Glenmont",): {sid["s1"]},
            ("Pentagon",): {sid["s1"], sid["s2"], sid["s3"]},
            ("Wheaton",): {sid["s1"], sid["s2"], sid["s4"]},
        }
        assert {k: set(v) for k, v in index.lists.items()} == expect

    def test_l2_lists(self, group):
        db, grp = group
        sid = sids_by_card(grp)
        template = location_template(("X", "Y"))
        index = build_index(grp, base_template(template), db.schema)
        expect = {
            ("Clarendon", "Deanwood"): {sid["s4"]},
            ("Clarendon", "Pentagon"): {sid["s3"]},
            ("Deanwood", "Wheaton"): {sid["s4"]},
            ("Glenmont", "Pentagon"): {sid["s1"]},
            ("Pentagon", "Pentagon"): {sid["s1"]},
            ("Pentagon", "Wheaton"): {sid["s1"], sid["s2"]},
            ("Wheaton", "Clarendon"): {sid["s4"]},
            ("Wheaton", "Pentagon"): {sid["s1"], sid["s2"]},
            ("Wheaton", "Wheaton"): {sid["s1"], sid["s2"]},
        }
        assert {k: set(v) for k, v in index.lists.items()} == expect

    def test_l2_xx_filter_is_footnote7(self, group):
        db, grp = group
        sid = sids_by_card(grp)
        base = build_index(
            grp, base_template(location_template(("X", "Y"))), db.schema
        )
        xx = base.filter_for(location_template(("X", "X")), db.schema)
        assert {k: set(v) for k, v in xx.lists.items()} == {
            ("Pentagon", "Pentagon"): {sid["s1"]},
            ("Wheaton", "Wheaton"): {sid["s1"], sid["s2"]},
        }


class TestFigure12Query3:
    def test_q3_counts(self, group):
        db, __ = group
        predicate = MatchingPredicate(
            ("x1", "y1"),
            Comparison(PlaceholderField("x1", "action"), "=", Literal("in"))
            & Comparison(PlaceholderField("y1", "action"), "=", Literal("out")),
        )
        spec = figure8_spec(("X", "Y"), predicate=predicate)
        expected = {
            ("Clarendon", "Pentagon"): 1,
            ("Deanwood", "Wheaton"): 1,
            ("Glenmont", "Pentagon"): 1,
            ("Pentagon", "Wheaton"): 2,
            ("Wheaton", "Clarendon"): 1,
            ("Wheaton", "Pentagon"): 2,
        }
        for strategy in ("cb", "ii"):
            cuboid, __stats = SOLAPEngine(db).execute(spec, strategy)
            got = {cell: v["COUNT(*)"] for (__g, cell), v in cuboid.cells.items()}
            assert got == expected, strategy


class TestFigure13And14Joins:
    def test_xyy_join_and_verification(self, group):
        db, grp = group
        sid = sids_by_card(grp)
        target = location_template(("X", "Y", "Y"))
        base2 = build_index(
            grp, base_template(location_template(("X", "Y"))), db.schema
        )
        left = base2  # L2^(X,Y) with X, Y unrestricted
        right = base2.filter_for(location_template(("Y", "Y")), db.schema)
        candidate = join_indices(left, right, target, db.schema)
        # Figure 13's candidate column: l12 = {s1} for (P, P, P) before
        # verification.
        assert set(candidate.get(("Pentagon", "Pentagon", "Pentagon"))) == {
            sid["s1"]
        }
        verified = verify_index(candidate, grp, db.schema)
        # After verification s1 is eliminated from (P, P, P) (the paper's
        # l12 example) and from (W, P, P) (s1 has no contiguous W, P, P).
        assert ("Pentagon", "Pentagon", "Pentagon") not in verified.lists
        expect = {
            ("Glenmont", "Pentagon", "Pentagon"): {sid["s1"]},
            ("Pentagon", "Wheaton", "Wheaton"): {sid["s1"], sid["s2"]},
        }
        assert {k: set(v) for k, v in verified.lists.items()} == expect

    def test_xyyx_join_figure14(self, group):
        db, grp = group
        sid = sids_by_card(grp)
        template = location_template(("X", "Y", "Y", "X"))
        base2 = build_index(
            grp, base_template(location_template(("X", "Y"))), db.schema
        )
        l3 = verify_index(
            join_indices(
                base2,
                base2.filter_for(location_template(("Y", "Y")), db.schema),
                prefix_template(template, 3),
                db.schema,
            ),
            grp,
            db.schema,
        )
        l4 = verify_index(
            join_indices(l3, base2, template, db.schema), grp, db.schema
        )
        assert {k: set(v) for k, v in l4.lists.items()} == {
            ("Pentagon", "Wheaton", "Wheaton", "Pentagon"): {
                sid["s1"],
                sid["s2"],
            }
        }

    def test_q1_final_count_with_predicate(self, group):
        """Only the [Pentagon, Wheaton, Wheaton, Pentagon] cell is non-zero.

        Under Figure 8's action convention (odd 1-based positions are
        "in"), *both* s1 (positions 3-6: in, out, in, out) and s2 qualify,
        so the count is 2.  The paper's prose says "a count of 1", which
        contradicts its own Figure 14 list {s1, s2} plus the predicate —
        we pin the self-consistent value.
        """
        db, __ = group
        predicate = MatchingPredicate(
            ("x1", "y1", "y2", "x2"),
            Comparison(PlaceholderField("x1", "action"), "=", Literal("in"))
            & Comparison(PlaceholderField("y1", "action"), "=", Literal("out"))
            & Comparison(PlaceholderField("y2", "action"), "=", Literal("in"))
            & Comparison(PlaceholderField("x2", "action"), "=", Literal("out")),
        )
        spec = figure8_spec(("X", "Y", "Y", "X"), predicate=predicate)
        for strategy in ("cb", "ii"):
            cuboid, __stats = SOLAPEngine(db).execute(spec, strategy)
            got = {cell: v["COUNT(*)"] for (__g, cell), v in cuboid.cells.items()}
            assert got == {
                ("Pentagon", "Wheaton"): 2
            }, strategy


class TestPROLLUPExample:
    def test_wheaton_d10_count_is_three(self, group):
        """Section 4.2.2 item 4: rolling Y of Q3's (X, Y) up to district,
        cell [Wheaton, D10] has count three (s1, s2 via Pentagon; s4 via
        Clarendon)."""
        db, __ = group
        from repro.core import operations as ops

        spec = figure8_spec(("X", "Y"))
        rolled = ops.p_roll_up(spec, "Y", db.schema)
        for strategy in ("cb", "ii"):
            cuboid, __stats = SOLAPEngine(db).execute(rolled, strategy)
            assert cuboid.count(("Wheaton", "D10")) == 3, strategy

    def test_s6_counterexample_merge_invalidity(self):
        """The s6 example: (X, Y, Y, X) at district level must count the
        sequence <Pentagon, Wheaton, Wheaton, Clarendon> under
        [D10, D20, D20, D10] even though it appears in no station-level
        (X, Y, Y, X) list — the engine must NOT answer by merging."""
        from repro import Dimension, EventDatabase, Hierarchy, Schema
        from repro.core import operations as ops
        from tests.conftest import DISTRICTS

        schema = Schema(
            [
                Dimension("time"),
                Dimension("card"),
                Dimension(
                    "location",
                    Hierarchy(
                        "location", ("station", "district"), {"district": DISTRICTS}
                    ),
                ),
            ]
        )
        stations = ["Pentagon", "Wheaton", "Wheaton", "Clarendon"]
        db = EventDatabase.from_records(
            schema,
            [
                {"time": i, "card": 6, "location": s}
                for i, s in enumerate(stations)
            ],
        )
        spec = CuboidSpec(
            template=location_template(("X", "Y", "Y", "X")),
            cluster_by=(("card", "card"),),
            sequence_by=(("time", True),),
        )
        # Station level: no occurrence at all.
        station_cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        assert len(station_cuboid) == 0
        # District level: exactly one cell with count 1 — both strategies.
        rolled = ops.p_roll_up(ops.p_roll_up(spec, "X", schema), "Y", schema)
        for strategy in ("cb", "ii"):
            engine = SOLAPEngine(db)
            if strategy == "ii":
                # Pre-build the station-level index so a (wrong) merge
                # would be tempting.
                engine.execute(spec, "ii")
            cuboid, __stats = engine.execute(rolled, strategy)
            assert cuboid.count(("D10", "D20")) == 1, strategy
