"""Unit tests for wildcard (ANY) template positions — the paper's
regular-expression extension direction (Section 3.2)."""

import pytest

from repro import (
    Comparison,
    Literal,
    MatchingPredicate,
    OperationError,
    PlaceholderField,
    SOLAPEngine,
    SpecError,
    TemplateMatcher,
    build_sequence_groups,
)
from repro.core import operations as ops
from repro.core.spec import (
    CuboidSpec,
    PatternKind,
    PatternSymbol,
    PatternTemplate,
)
from repro.ql import format_spec, parse_query
from tests.conftest import figure8_spec, make_figure8_db


def x_any_y_template(kind=PatternKind.SUBSTRING) -> PatternTemplate:
    return PatternTemplate(
        kind=kind,
        positions=("X", "_w1", "Y"),
        symbols=(
            PatternSymbol("X", "location", "station"),
            PatternSymbol.any("_w1"),
            PatternSymbol("Y", "location", "station"),
        ),
    )


def x_any_y_spec(**kwargs) -> CuboidSpec:
    return CuboidSpec(
        template=x_any_y_template(),
        cluster_by=(("card", "card"),),
        sequence_by=(("time", True),),
        **kwargs,
    )


class TestWildcardSymbols:
    def test_any_factory(self):
        symbol = PatternSymbol.any("_w1")
        assert symbol.wildcard
        assert not symbol.is_restricted
        assert "ANY" in str(symbol)

    def test_wildcard_cannot_be_restricted(self):
        with pytest.raises(SpecError):
            PatternSymbol("_w1", "*", "*", fixed="x", wildcard=True)

    def test_template_dims_exclude_wildcards(self):
        template = x_any_y_template()
        assert template.length == 3
        assert template.n_dims == 2
        assert [s.name for s in template.cell_symbols] == ["X", "Y"]
        assert template.has_wildcards

    def test_validate_skips_wildcard_domains(self):
        db = make_figure8_db()
        x_any_y_template().validate(db.schema)

    def test_signature_distinguishes_wildcards(self):
        plain = figure8_spec(("X", "Z", "Y")).template  # needs Z binding
        assert x_any_y_template().signature() != plain.signature()


class TestWildcardMatching:
    def get(self, card):
        db = make_figure8_db()
        groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
        by_card = {s.cluster_key[0]: s for s in groups.single_group()}
        return db, by_card[card]

    def test_substring_skips_one_event(self):
        db, s2 = self.get(23456)  # <Pentagon, Wheaton, Wheaton, Pentagon>
        matcher = TemplateMatcher(x_any_y_template(), db.schema)
        cells = set(matcher.assignments(s2))
        assert cells == {("Pentagon", "Wheaton"), ("Wheaton", "Pentagon")}

    def test_wildcard_values_are_none(self):
        db, s2 = self.get(23456)
        matcher = TemplateMatcher(x_any_y_template(), db.schema)
        for values, __ in matcher.iter_occurrences(s2):
            assert values[1] is None

    def test_positions_key_roundtrip(self):
        db, __ = self.get(23456)
        matcher = TemplateMatcher(x_any_y_template(), db.schema)
        cell = matcher.cell_key(("a", None, "b"))
        assert cell == ("a", "b")
        assert matcher.positions_key(cell) == ("a", None, "b")

    def test_predicate_can_constrain_wildcard_event(self):
        db, s2 = self.get(23456)
        predicate = MatchingPredicate(
            ("x1", "w1", "y1"),
            Comparison(PlaceholderField("w1", "action"), "=", Literal("out")),
        )
        matcher = TemplateMatcher(
            x_any_y_template(), db.schema, predicate=predicate
        )
        cells = set(matcher.assignments(s2))
        # the middle event must be an "out": only position 1 (Wheaton out)
        assert cells == {("Pentagon", "Wheaton")}

    def test_subsequence_with_wildcard(self):
        db, s4 = self.get(77)  # <Wheaton, Clarendon, Deanwood, Wheaton>
        matcher = TemplateMatcher(
            x_any_y_template(PatternKind.SUBSEQUENCE), db.schema
        )
        cells = set(matcher.assignments(s4))
        assert ("Wheaton", "Wheaton") in cells


class TestWildcardExecution:
    def test_cb_equals_ii(self):
        db = make_figure8_db()
        spec = x_any_y_spec()
        cb, __ = SOLAPEngine(db).execute(spec, "cb")
        ii, __ = SOLAPEngine(db).execute(spec, "ii")
        assert cb.to_dict() == ii.to_dict()
        assert len(cb) > 0

    def test_cuboid_header_omits_wildcards(self):
        db = make_figure8_db()
        cuboid, __ = SOLAPEngine(db).execute(x_any_y_spec(), "cb")
        assert cuboid.header() == (
            "X(location@station)",
            "Y(location@station)",
            "COUNT(*)",
        )

    def test_warm_engine_with_wildcards(self):
        db = make_figure8_db()
        engine = SOLAPEngine(db)
        spec = x_any_y_spec()
        first, __ = engine.execute(spec, "ii")
        second, stats = engine.execute(spec, "ii")
        assert stats.cuboid_cache_hit
        assert first.to_dict() == second.to_dict()


class TestWildcardOperations:
    def test_append_wildcard(self):
        spec = figure8_spec(("X", "Y"))
        grown = ops.append_wildcard(spec)
        assert grown.template.positions == ("X", "Y", "_w1")
        assert grown.template.n_dims == 2
        assert grown.template.has_wildcards

    def test_prepend_wildcard(self):
        spec = figure8_spec(("X", "Y"))
        grown = ops.prepend_wildcard(spec)
        assert grown.template.positions == ("_w1", "X", "Y")

    def test_fresh_names_do_not_collide(self):
        spec = ops.append_wildcard(figure8_spec(("X", "Y")))
        again = ops.append_wildcard(spec)
        assert again.template.positions == ("X", "Y", "_w1", "_w2")

    def test_de_tail_removes_wildcard(self):
        spec = figure8_spec(("X", "Y"))
        assert ops.de_tail(ops.append_wildcard(spec)) == spec

    def test_wildcard_cannot_repeat(self):
        spec = ops.append_wildcard(figure8_spec(("X", "Y")))
        with pytest.raises(OperationError):
            ops.append(spec, "_w1")

    def test_wildcard_rejects_level_ops_and_slices(self):
        db = make_figure8_db()
        spec = ops.append_wildcard(figure8_spec(("X", "Y")))
        with pytest.raises(OperationError):
            ops.p_roll_up(spec, "_w1", db.schema)
        with pytest.raises(OperationError):
            ops.p_drill_down(spec, "_w1", db.schema)
        with pytest.raises(OperationError):
            ops.slice_pattern(spec, "_w1", "x")

    def test_wildcard_predicate_via_append(self):
        spec = figure8_spec(("X", "Y"))
        extra = Comparison(PlaceholderField("w1", "action"), "=", Literal("out"))
        grown = ops.append_wildcard(
            spec, placeholder="w1", extra_predicate=extra
        )
        assert grown.predicate is not None
        assert grown.predicate.placeholders[-1] == "w1"


class TestWildcardQL:
    def test_parse_any_positions(self):
        db = make_figure8_db()
        text = """
        SELECT COUNT(*) FROM Event
        CLUSTER BY card AT card
        SEQUENCE BY time ASCENDING
        CUBOID BY SUBSTRING (X, ANY, Y)
          WITH X AS location AT station, Y AS location AT station
        LEFT-MAXIMALITY (x1, w1, y1)
        """
        spec = parse_query(text, db.schema)
        assert spec.template.has_wildcards
        assert spec.template.n_dims == 2

    def test_roundtrip(self):
        spec = x_any_y_spec()
        assert parse_query(format_spec(spec)) == spec

    def test_all_wildcards_roundtrip(self):
        template = PatternTemplate(
            kind=PatternKind.SUBSTRING,
            positions=("_w1", "_w2"),
            symbols=(PatternSymbol.any("_w1"), PatternSymbol.any("_w2")),
        )
        spec = CuboidSpec(
            template=template,
            cluster_by=(("card", "card"),),
            sequence_by=(("time", True),),
        )
        assert parse_query(format_spec(spec)) == spec

    def test_bindings_still_required_for_real_symbols(self):
        text = """
        SELECT COUNT(*) FROM Event
        CLUSTER BY card AT card
        SEQUENCE BY time ASCENDING
        CUBOID BY SUBSTRING (X, ANY)
        LEFT-MAXIMALITY (x1, w1)
        """
        with pytest.raises(Exception):
            parse_query(text)
