"""Unit tests for the SOLAPEngine (strategies, caches, auto selection)."""

import pytest

from repro import EngineError, SOLAPEngine
from repro.index.registry import base_template
from tests.conftest import figure8_spec, make_figure8_db


class TestExecution:
    def test_unknown_strategy_raises(self):
        engine = SOLAPEngine(make_figure8_db())
        with pytest.raises(EngineError):
            engine.execute(figure8_spec(("X", "Y")), "turbo")

    def test_cb_and_ii_agree(self):
        db = make_figure8_db()
        spec = figure8_spec(("X", "Y", "Y", "X"))
        cb, __ = SOLAPEngine(db).execute(spec, "cb")
        ii, __ = SOLAPEngine(db).execute(spec, "ii")
        assert cb.to_dict() == ii.to_dict()

    def test_spec_validated_against_schema(self):
        db = make_figure8_db()
        spec = figure8_spec(("X", "Y"))
        bad = spec.with_template(
            spec.template.replace_symbol(
                "X",
                type(spec.template.symbols[0])("X", "location", "continent"),
            )
        )
        with pytest.raises(Exception):
            SOLAPEngine(db).execute(bad)

    def test_stats_record_strategy_and_runtime(self):
        db = make_figure8_db()
        __, stats = SOLAPEngine(db).execute(figure8_spec(("X", "Y")), "cb")
        assert stats.strategy == "CB"
        assert stats.runtime_seconds >= 0
        assert stats.sequences_scanned == 4


class TestCuboidRepository:
    def test_repeated_query_hits_repository(self):
        engine = SOLAPEngine(make_figure8_db())
        spec = figure8_spec(("X", "Y"))
        first, stats1 = engine.execute(spec, "cb")
        second, stats2 = engine.execute(spec, "cb")
        assert not stats1.cuboid_cache_hit
        assert stats2.cuboid_cache_hit
        assert stats2.strategy == "cache"
        assert second.to_dict() == first.to_dict()

    def test_repository_can_be_disabled(self):
        engine = SOLAPEngine(make_figure8_db(), use_repository=False)
        spec = figure8_spec(("X", "Y"))
        engine.execute(spec, "cb")
        __, stats = engine.execute(spec, "cb")
        assert not stats.cuboid_cache_hit

    def test_de_tail_returns_cached(self):
        """The paper's Qa -> APPEND -> DE-TAIL returns the cached Qa."""
        from repro.core import operations as ops

        engine = SOLAPEngine(make_figure8_db())
        spec = figure8_spec(("X", "Y"))
        engine.execute(spec, "ii")
        grown = ops.append(spec, "Z", "location", "station")
        engine.execute(grown, "ii")
        __, stats = engine.execute(ops.de_tail(grown), "ii")
        assert stats.cuboid_cache_hit


class TestSequenceCache:
    def test_pipeline_shared_across_templates(self):
        engine = SOLAPEngine(make_figure8_db())
        __, stats1 = engine.execute(figure8_spec(("X", "Y")), "cb")
        __, stats2 = engine.execute(figure8_spec(("X", "Y", "Y", "X")), "cb")
        assert not stats1.sequence_cache_hit
        assert stats2.sequence_cache_hit


class TestAutoStrategy:
    def test_auto_prefers_cb_cold(self):
        engine = SOLAPEngine(make_figure8_db())
        __, stats = engine.execute(figure8_spec(("X", "Y")), "auto")
        assert stats.strategy == "CB"

    def test_auto_prefers_ii_when_index_exists(self):
        engine = SOLAPEngine(make_figure8_db())
        spec = figure8_spec(("X", "Y"))
        engine.precompute(spec, [base_template(spec.template)])
        __, stats = engine.execute(spec, "auto")
        assert stats.strategy == "II"
        assert stats.sequences_scanned == 0


class TestPipelineIsolation:
    def test_indices_do_not_leak_across_where_clauses(self):
        """Regression: an index built over a WHERE-filtered pipeline must
        never serve the unfiltered query (or vice versa) — group keys
        collide but the sequence populations differ."""
        from dataclasses import replace

        from repro import Comparison, EventField, Literal

        db = make_figure8_db()
        engine = SOLAPEngine(db)
        spec_all = figure8_spec(("X", "Y"))
        spec_filtered = replace(
            spec_all,
            where=Comparison(EventField("card"), "=", Literal(688)),
        )
        engine.execute(spec_filtered, "ii")  # builds indices over 1 sequence
        warm, __ = engine.execute(spec_all, "ii")
        truth, __ = SOLAPEngine(db).execute(spec_all, "cb")
        assert warm.to_dict() == truth.to_dict()
        # and the reverse direction
        engine2 = SOLAPEngine(db)
        engine2.execute(spec_all, "ii")
        filtered, __ = engine2.execute(spec_filtered, "ii")
        truth_f, __ = SOLAPEngine(db).execute(spec_filtered, "cb")
        assert filtered.to_dict() == truth_f.to_dict()

    def test_indices_do_not_leak_across_clusterings(self):
        from dataclasses import replace

        db = make_figure8_db()
        engine = SOLAPEngine(db)
        by_card = figure8_spec(("X", "Y"))
        by_action = replace(by_card, cluster_by=(("action", "action"),))
        engine.execute(by_card, "ii")
        warm, __ = engine.execute(by_action, "ii")
        truth, __ = SOLAPEngine(db).execute(by_action, "cb")
        assert warm.to_dict() == truth.to_dict()

    def test_registry_view_aggregates_pipelines(self):
        from dataclasses import replace

        from repro import Comparison, EventField, Literal

        db = make_figure8_db()
        engine = SOLAPEngine(db)
        spec_a = figure8_spec(("X", "Y"))
        spec_b = replace(
            spec_a, where=Comparison(EventField("card"), "=", Literal(688))
        )
        engine.execute(spec_a, "ii")
        engine.execute(spec_b, "ii")
        assert engine.registry_for(spec_a) is not engine.registry_for(spec_b)
        assert len(engine.registry) == len(engine.registry_for(spec_a)) + len(
            engine.registry_for(spec_b)
        )
        assert engine.registry.total_bytes() > 0
        engine.invalidate_caches()
        assert len(engine.registry) == 0


class TestMaintenance:
    def test_precompute_registers_indices(self):
        engine = SOLAPEngine(make_figure8_db())
        spec = figure8_spec(("X", "Y"))
        stats = engine.precompute(spec, [base_template(spec.template)])
        assert stats.indices_built == 1
        assert len(engine.registry) == 1

    def test_invalidate_caches(self):
        engine = SOLAPEngine(make_figure8_db())
        spec = figure8_spec(("X", "Y"))
        engine.execute(spec, "ii")
        engine.invalidate_caches()
        assert len(engine.registry) == 0
        assert len(engine.repository) == 0
        assert len(engine.sequence_cache) == 0

    def test_repr(self):
        engine = SOLAPEngine(make_figure8_db())
        assert "16 events" in repr(engine)
