"""Unit tests for predicate expressions and evaluation contexts."""

import pytest

from repro import (
    And,
    Between,
    Comparison,
    EventField,
    ExpressionError,
    InSet,
    Literal,
    Not,
    Or,
    PlaceholderField,
    TRUE,
    conjoin,
)
from repro.events.expression import BindingContext, EventContext


EVENT = {"location": "Pentagon", "action": "in", "amount": -2.0}


def evaluate(expr, event=EVENT):
    return expr.evaluate(EventContext(event))


class TestComparison:
    def test_equality(self):
        assert evaluate(Comparison(EventField("action"), "=", Literal("in")))
        assert not evaluate(Comparison(EventField("action"), "=", Literal("out")))

    def test_inequality_operators(self):
        amount = EventField("amount")
        assert evaluate(Comparison(amount, "<", Literal(0)))
        assert evaluate(Comparison(amount, "<=", Literal(-2.0)))
        assert evaluate(Comparison(amount, ">=", Literal(-2.0)))
        assert not evaluate(Comparison(amount, ">", Literal(0)))
        assert evaluate(Comparison(amount, "!=", Literal(1)))

    def test_field_to_field_comparison(self):
        event = {"a": 3, "b": 3}
        assert Comparison(EventField("a"), "=", EventField("b")).evaluate(
            EventContext(event)
        )

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison(EventField("a"), "~", Literal(1))

    def test_incomparable_types_raise(self):
        with pytest.raises(ExpressionError):
            evaluate(Comparison(EventField("amount"), "<", Literal("zero")))

    def test_unknown_attribute_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(Comparison(EventField("ghost"), "=", Literal(1)))

    def test_attributes_introspection(self):
        expr = Comparison(EventField("a"), "=", EventField("b"))
        assert expr.attributes() == ("a", "b")


class TestLogical:
    def test_and_or_not(self):
        true = Comparison(EventField("action"), "=", Literal("in"))
        false = Comparison(EventField("action"), "=", Literal("out"))
        assert evaluate(And((true, true)))
        assert not evaluate(And((true, false)))
        assert evaluate(Or((false, true)))
        assert not evaluate(Or((false, false)))
        assert evaluate(Not(false))

    def test_operator_overloads(self):
        true = Comparison(EventField("action"), "=", Literal("in"))
        false = Comparison(EventField("action"), "=", Literal("out"))
        assert evaluate(true & true)
        assert evaluate(true | false)
        assert evaluate(~false)

    def test_true_predicate(self):
        assert evaluate(TRUE)

    def test_conjoin_drops_trues(self):
        cmp_ = Comparison(EventField("action"), "=", Literal("in"))
        assert conjoin() is TRUE
        assert conjoin(TRUE, TRUE) is TRUE
        assert conjoin(cmp_) is cmp_
        combined = conjoin(cmp_, cmp_)
        assert isinstance(combined, And)
        assert len(combined.terms) == 2


class TestSetAndRange:
    def test_in_set(self):
        expr = InSet(EventField("location"), ("Pentagon", "Wheaton"))
        assert evaluate(expr)
        assert not evaluate(InSet(EventField("location"), ("Glenmont",)))

    def test_between(self):
        expr = Between(EventField("amount"), -5, 0)
        assert evaluate(expr)
        assert not evaluate(Between(EventField("amount"), 0, 5))


class TestBindingContext:
    def test_placeholder_resolution(self):
        bindings = {"x1": {"action": "in"}, "y1": {"action": "out"}}
        expr = And(
            (
                Comparison(PlaceholderField("x1", "action"), "=", Literal("in")),
                Comparison(PlaceholderField("y1", "action"), "=", Literal("out")),
            )
        )
        assert expr.evaluate(BindingContext(bindings))

    def test_unknown_placeholder_raises(self):
        expr = Comparison(PlaceholderField("zz", "action"), "=", Literal("in"))
        with pytest.raises(ExpressionError):
            expr.evaluate(BindingContext({"x1": {"action": "in"}}))

    def test_unknown_attribute_raises(self):
        expr = Comparison(PlaceholderField("x1", "speed"), "=", Literal(1))
        with pytest.raises(ExpressionError):
            expr.evaluate(BindingContext({"x1": {"action": "in"}}))

    def test_placeholder_in_event_context_raises(self):
        expr = Comparison(PlaceholderField("x1", "action"), "=", Literal("in"))
        with pytest.raises(ExpressionError):
            expr.evaluate(EventContext(EVENT))

    def test_event_field_in_binding_context_raises(self):
        expr = Comparison(EventField("action"), "=", Literal("in"))
        with pytest.raises(ExpressionError):
            expr.evaluate(BindingContext({}))

    def test_placeholders_introspection(self):
        expr = Or(
            (
                Comparison(PlaceholderField("x1", "a"), "=", Literal(1)),
                Not(Comparison(PlaceholderField("y1", "b"), "=", Literal(2))),
            )
        )
        assert set(expr.placeholders()) == {"x1", "y1"}


class TestHashability:
    def test_expressions_are_hashable(self):
        expr1 = And(
            (
                Comparison(EventField("a"), "=", Literal(1)),
                InSet(EventField("b"), (1, 2)),
            )
        )
        expr2 = And(
            (
                Comparison(EventField("a"), "=", Literal(1)),
                InSet(EventField("b"), (1, 2)),
            )
        )
        assert expr1 == expr2
        assert hash(expr1) == hash(expr2)
        assert len({expr1, expr2}) == 1

    def test_str_renderings(self):
        expr = Not(
            And(
                (
                    Comparison(EventField("a"), "=", Literal(1)),
                    Between(EventField("b"), 0, 2),
                )
            )
        )
        text = str(expr)
        assert "NOT" in text and "AND" in text and "BETWEEN" in text
