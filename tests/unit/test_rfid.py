"""Unit tests for the RFID supply-chain generator and its canonical queries."""

import pytest

from repro import SOLAPEngine, build_sequence_groups
from repro.core import operations as ops
from repro.datagen.rfid import (
    PATHS,
    RFIDConfig,
    generate_database,
    path_spec,
    shrinkage_spec,
)


@pytest.fixture(scope="module")
def db():
    return generate_database(RFIDConfig(n_lots=20, lot_size=8, seed=5))


class TestGeneration:
    def test_hierarchy_levels(self, db):
        hierarchy = db.schema.hierarchy("location")
        assert hierarchy.levels == ("reader", "zone", "site")
        reader = db.column("location")[0]
        zone = hierarchy.map_value(reader, "zone")
        site = hierarchy.map_value(reader, "site")
        assert reader.startswith(zone)
        assert site in PATHS or site in ("Factory", "DistributionCenter")

    def test_every_item_starts_at_factory(self, db):
        groups = build_sequence_groups(
            db, None, [("item", "item")], [("time", True)]
        )
        for sequence in groups.all_sequences():
            first_site = db.schema.map_value(
                "location", sequence.event(0)["location"], "site"
            )
            assert first_site == "Factory"

    def test_terminal_status_is_unique_per_item(self, db):
        groups = build_sequence_groups(
            db, None, [("item", "item")], [("time", True)]
        )
        for sequence in groups.all_sequences():
            statuses = [event["status"] for event in sequence.events()]
            assert all(status == "moving" for status in statuses[:-1])
            assert statuses[-1] in ("in-transit", "delivered", "returned")

    def test_bulky_movement_within_lots(self, db):
        """Items of one lot share reader paths (prefix-wise)."""
        groups = build_sequence_groups(
            db, None, [("item", "item")], [("time", True)]
        )
        by_lot = {}
        for sequence in groups.all_sequences():
            item = sequence.cluster_key[0]
            lot = int(item.split("-")[1]) // 8
            readers = tuple(e["location"] for e in sequence.events())
            by_lot.setdefault(lot, []).append(readers)
        for trails in by_lot.values():
            longest = max(trails, key=len)
            for trail in trails:
                assert trail == longest[: len(trail)]

    def test_determinism(self):
        a = generate_database(RFIDConfig(n_lots=4, lot_size=3, seed=9))
        b = generate_database(RFIDConfig(n_lots=4, lot_size=3, seed=9))
        assert a.column("location") == b.column("location")


class TestCanonicalQueries:
    def test_path_spec_site_level(self, db):
        cuboid, __ = SOLAPEngine(db).execute(path_spec("site"), "cb")
        # bulky movement: site-level transitions are few and heavy
        assert len(cuboid) <= 8
        assert cuboid.count(("Factory", "Factory")) > 0  # intra-site moves

    def test_path_rollup_collapses_cells(self, db):
        engine = SOLAPEngine(db)
        reader_level, __ = engine.execute(path_spec("reader"), "cb")
        zone_level, __ = engine.execute(path_spec("zone"), "cb")
        site_level, __ = engine.execute(path_spec("site"), "cb")
        assert len(site_level) < len(zone_level) < len(reader_level)

    def test_path_cb_equals_ii(self, db):
        for level in ("reader", "zone", "site"):
            cb, __ = SOLAPEngine(db).execute(path_spec(level), "cb")
            ii, __ = SOLAPEngine(db).execute(path_spec(level), "ii")
            assert cb.to_dict() == ii.to_dict(), level

    def test_p_roll_up_navigation(self, db):
        engine = SOLAPEngine(db)
        spec = path_spec("reader")
        engine.execute(spec, "ii")
        rolled = ops.p_roll_up(
            ops.p_roll_up(spec, "X", db.schema), "Y", db.schema
        )
        ii, stats = engine.execute(rolled, "ii")
        cb, __ = SOLAPEngine(db).execute(rolled, "cb")
        assert ii.to_dict() == cb.to_dict()

    def test_shrinkage_counts_lost_items(self, db):
        cuboid, __ = SOLAPEngine(db).execute(shrinkage_spec(), "cb")
        lost = int(cuboid.total())
        # ground truth: items whose final status is in-transit
        groups = build_sequence_groups(
            db, None, [("item", "item")], [("time", True)]
        )
        truth = sum(
            1
            for sequence in groups.all_sequences()
            if sequence.event(len(sequence) - 1)["status"] == "in-transit"
        )
        assert lost == truth
        # every loss happens after the factory (cutoff >= 5 is post-DC)
        for __g, (zone,), __v in cuboid:
            assert not zone.startswith("F-")

    def test_shrinkage_cb_equals_ii(self, db):
        cb, __ = SOLAPEngine(db).execute(shrinkage_spec(), "cb")
        ii, __ = SOLAPEngine(db).execute(shrinkage_spec(), "ii")
        assert cb.to_dict() == ii.to_dict()
