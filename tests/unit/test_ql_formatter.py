"""Unit tests for the query-language formatter (round-trips)."""


from repro import (
    AggregateScope,
    AggregateSpec,
    CellRestriction,
    Comparison,
    EventField,
    Literal,
    MatchingPredicate,
    PlaceholderField,
)
from repro.core import operations as ops
from repro.events.expression import Between, InSet, Not, Or
from repro.ql import format_expr, format_spec, parse_query
from tests.conftest import figure8_spec, make_transit_schema


def roundtrip(spec):
    return parse_query(format_spec(spec))


class TestFormatExpr:
    def test_comparison(self):
        expr = Comparison(EventField("time"), ">=", Literal(5))
        assert format_expr(expr) == "time >= 5"

    def test_string_literals_quoted(self):
        expr = Comparison(
            PlaceholderField("x1", "action"), "=", Literal("in")
        )
        assert format_expr(expr) == 'x1.action = "in"'

    def test_in_between_not_or(self):
        expr = Or(
            (
                InSet(EventField("a"), (1, 2)),
                Not(Between(EventField("b"), 0, 9)),
            )
        )
        text = format_expr(expr)
        assert "IN (1, 2)" in text and "BETWEEN 0 AND 9" in text and "NOT" in text


class TestRoundTrips:
    def test_minimal_spec(self):
        spec = figure8_spec(("X", "Y"))
        assert roundtrip(spec) == spec

    def test_repeated_symbols(self):
        spec = figure8_spec(("X", "Y", "Y", "X"))
        assert roundtrip(spec) == spec

    def test_with_where_and_groups(self):
        spec = figure8_spec(
            ("X", "Y"),
            where=Comparison(EventField("time"), "<", Literal(100)),
            group_by=(("location", "district"),),
        )
        assert roundtrip(spec) == spec

    def test_with_predicate(self):
        predicate = MatchingPredicate(
            ("x1", "y1"),
            Comparison(PlaceholderField("x1", "action"), "=", Literal("in"))
            & Comparison(PlaceholderField("y1", "action"), "=", Literal("out")),
        )
        spec = figure8_spec(("X", "Y"), predicate=predicate)
        assert roundtrip(spec) == spec

    def test_with_restrictions_and_aggregates(self):
        spec = figure8_spec(
            ("X", "Y"),
            restriction=CellRestriction.ALL_MATCHED,
            aggregates=(
                AggregateSpec("COUNT"),
                AggregateSpec("SUM", "amount", AggregateScope.SEQUENCE),
            ),
        )
        assert roundtrip(spec) == spec

    def test_with_sliced_symbol(self):
        spec = ops.slice_pattern(figure8_spec(("X", "Y")), "X", "Pentagon")
        assert roundtrip(spec) == spec

    def test_with_within_constraint(self):
        schema = make_transit_schema()
        spec = ops.p_roll_up(figure8_spec(("X", "Y")), "X", schema)
        spec = ops.slice_pattern(spec, "X", "D10")
        spec = ops.p_drill_down(spec, "X", schema)
        assert spec.template.symbol("X").within == ("district", "D10")
        assert roundtrip(spec) == spec

    def test_subsequence_roundtrip(self):
        spec = figure8_spec(("X", "Y"), kind="subsequence")
        assert roundtrip(spec) == spec

    def test_global_slice_emitted_as_comment(self):
        spec = figure8_spec(
            ("X", "Y"), group_by=(("location", "district"),)
        )
        sliced = ops.slice_global(spec, "location", "D10")
        text = format_spec(sliced)
        assert "-- global slice" in text
        # Comment parses away; the round-trip drops only the session state.
        assert parse_query(text) == spec
