"""Unit tests for the flight recorder and per-query resource profiles."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    ResourceProfile,
    WorkerProfile,
    stage_seconds_from_root,
    worker_profile_from_spans,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import RemoteSpanCollector, SpanContext, Tracer, span


def make_stats(root, **extra):
    class Stats:
        trace = root
        strategy = "CB"
        sequences_scanned = 4
        plan = None

    stats = Stats()
    stats.extra = dict(extra)
    return stats


def traced_root(with_worker=False):
    with Tracer("query") as tracer:
        with span("aggregation"):
            if with_worker:
                collector = RemoteSpanCollector(
                    SpanContext(tracer.trace_id, "s002"), shard=0
                )
                with collector:
                    with span("worker.match"):
                        pass
                    with span("worker.fold"):
                        pass
                from repro.obs.spans import graft_payload

                graft_payload(tracer.root.children[0], collector.payload())
    return tracer.root


class TestFlightRecorderRing:
    def test_record_returns_id_and_get_round_trips(self):
        recorder = FlightRecorder(capacity=4)
        root = traced_root()
        entry_id = recorder.record(
            stats=make_stats(root), query_id="q1", wall_seconds=0.01
        )
        assert entry_id == "t000001"
        entry = recorder.get(entry_id)
        assert entry["summary"]["query_id"] == "q1"
        assert entry["summary"]["wall_ms"] == pytest.approx(10.0)
        assert entry["trace"]["trace_schema"] == 2
        json.dumps(entry)  # fully serialisable

    def test_untraced_stats_not_recorded(self):
        recorder = FlightRecorder(capacity=4)
        assert recorder.record(stats=make_stats(None)) is None
        assert len(recorder) == 0

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=2)
        ids = [
            recorder.record(stats=make_stats(traced_root()), query_id=f"q{i}")
            for i in range(4)
        ]
        assert len(recorder) == 2
        assert recorder.get(ids[0]) is None
        assert recorder.get(ids[1]) is None
        assert recorder.get(ids[3])["summary"]["query_id"] == "q3"

    def test_recent_is_newest_first_and_limited(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(5):
            recorder.record(stats=make_stats(traced_root()), query_id=f"q{index}")
        recent = recorder.recent(limit=3)
        assert [entry["query_id"] for entry in recent] == ["q4", "q3", "q2"]

    def test_summary_carries_backend_and_fanout(self):
        recorder = FlightRecorder(capacity=4)
        root = traced_root()
        recorder.record(
            stats=make_stats(root, shard_fanout=3, scan_backend="process")
        )
        summary = recorder.recent()[0]
        assert summary["shard_fanout"] == 3
        assert summary["backend"] == "process"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(sample_per_second=-1.0)

    def test_thread_safe_concurrent_records(self):
        recorder = FlightRecorder(capacity=16)
        errors = []

        def work():
            try:
                for __ in range(20):
                    recorder.record(stats=make_stats(traced_root()))
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=work) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(recorder) == 16


class TestSampler:
    def test_token_bucket_with_injected_clock(self):
        now = [0.0]
        recorder = FlightRecorder(
            capacity=4,
            sample_per_second=1.0,
            sample_burst=2,
            clock=lambda: now[0],
        )
        # starts full at burst: two immediate samples, then dry
        assert recorder.should_sample() is True
        assert recorder.should_sample() is True
        assert recorder.should_sample() is False
        # half a second refills half a token — still dry
        now[0] = 0.5
        assert recorder.should_sample() is False
        # a full second in total refills one token
        now[0] = 1.0
        assert recorder.should_sample() is True
        assert recorder.should_sample() is False
        # tokens cap at burst, not at elapsed x rate
        now[0] = 100.0
        assert recorder.should_sample() is True
        assert recorder.should_sample() is True
        assert recorder.should_sample() is False

    def test_zero_rate_only_burst(self):
        now = [0.0]
        recorder = FlightRecorder(
            capacity=4,
            sample_per_second=0.0,
            sample_burst=1,
            clock=lambda: now[0],
        )
        assert recorder.should_sample() is True
        now[0] = 1e6
        assert recorder.should_sample() is False

    def test_sampler_metrics(self):
        registry = MetricsRegistry()
        now = [0.0]
        recorder = FlightRecorder(
            capacity=4,
            sample_per_second=0.0,
            sample_burst=1,
            registry=registry,
            clock=lambda: now[0],
        )
        recorder.should_sample()
        recorder.should_sample()
        recorder.record(stats=make_stats(traced_root()))
        snapshot = registry.snapshot()
        assert snapshot["solap_trace_sampled_total"]["series"][""] == 1.0
        assert snapshot["solap_trace_dropped_total"]["series"][""] == 1.0
        assert snapshot["solap_trace_recorded_total"]["series"][""] == 1.0

    def test_worker_stage_metrics_from_grafted_spans(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=4, registry=registry)
        recorder.record(stats=make_stats(traced_root(with_worker=True)))
        snapshot = registry.snapshot()
        spans_series = snapshot["solap_trace_worker_spans_total"]["series"]
        assert spans_series["stage=match"] == 1.0
        assert spans_series["stage=fold"] == 1.0
        assert "solap_trace_worker_stage_seconds_total" in snapshot


class TestProfiles:
    def test_worker_profile_round_trips_via_dict(self):
        profile = WorkerProfile(
            shard=2, pid=99, backend="process", match_s=0.5,
            sequences_scanned=10, cells_out=3,
        )
        assert WorkerProfile(**profile.to_dict()) == profile

    def test_resource_profile_to_dict(self):
        profile = ResourceProfile(
            backend="thread", fanout=2, skew=1.5,
            workers=[WorkerProfile(shard=0), WorkerProfile(shard=1)],
        )
        doc = profile.to_dict()
        assert doc["fanout"] == 2
        assert [w["shard"] for w in doc["workers"]] == [0, 1]
        json.dumps(doc)

    def test_stage_seconds_prefers_attach_attribute(self):
        collector = RemoteSpanCollector(SpanContext("t", "s001"))
        with collector:
            with span("worker.attach", seconds=1.25, reported=True):
                pass
            with span("worker.rebuild"):
                pass
        stages = stage_seconds_from_root(collector.root)
        assert stages["attach"] == 1.25
        assert stages["rebuild"] >= 0.0
        assert "match" not in stages

    def test_worker_profile_from_spans(self):
        collector = RemoteSpanCollector(SpanContext("t", "s001"))
        with collector:
            with span("worker.match"):
                pass
        profile = worker_profile_from_spans(
            collector.root, shard=3, backend="thread", pid=7,
            sequences_scanned=12,
        )
        assert profile.shard == 3
        assert profile.backend == "thread"
        assert profile.pid == 7
        assert profile.sequences_scanned == 12
        assert profile.match_s >= 0.0
        assert profile.attach_s == 0.0
