"""Unit tests for the concurrent query service (repro.service)."""

from __future__ import annotations

import operator
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

import pytest

from repro import (
    Comparison,
    EventField,
    Literal,
    QueryService,
    ServiceConfig,
    SOLAPEngine,
    build_sequence_groups,
)
from repro.core.stats import QueryStats
from repro.errors import (
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadedError,
    SessionNotFoundError,
)
from repro.service.deadline import Deadline
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.parallel import (
    ParallelCBScanner,
    ProcessExecutorBackend,
    SerialExecutorBackend,
    ThreadExecutorBackend,
    _collect_or_cancel,
    split_chunks,
)
from tests.conftest import figure8_spec, make_figure8_db


@pytest.fixture
def service():
    svc = QueryService(make_figure8_db(), ServiceConfig(max_workers=2))
    yield svc
    svc.shutdown()


class TestDeadline:
    def test_unbounded_is_none(self):
        assert Deadline.after(None) is None

    def test_fresh_deadline_passes_check(self):
        deadline = Deadline(60.0)
        deadline.check()
        assert not deadline.expired()
        assert deadline.remaining() > 0

    def test_expired_deadline_raises_typed_error(self):
        deadline = Deadline(1e-9)
        with pytest.raises(QueryTimeoutError) as excinfo:
            while True:
                deadline.check()
        assert excinfo.value.budget_seconds == pytest.approx(1e-9)
        assert excinfo.value.elapsed_seconds >= 0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            Deadline(0)


class TestExecute:
    def test_execute_matches_bare_engine(self, service):
        spec = figure8_spec(("X", "Y"))
        cuboid, stats = service.execute(spec, "cb")
        bare, __ = SOLAPEngine(make_figure8_db()).execute(spec, "cb")
        assert cuboid.cells == bare.cells
        assert service.metrics["queries_ok"] == 1
        assert service.metrics["requests_total"] == 1

    def test_deadline_exceeded_increments_metric(self, service):
        spec = figure8_spec(("X", "Y"))
        with pytest.raises(QueryTimeoutError):
            service.execute(spec, "cb", timeout=1e-9)
        assert service.metrics["deadline_exceeded_total"] == 1
        assert service.metrics["queries_ok"] == 0

    def test_failed_query_counted(self, service):
        spec = figure8_spec(("X", "Y"))
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            service.execute(spec, "bogus")
        assert service.metrics["queries_failed"] == 1

    def test_default_timeout_from_config(self):
        svc = QueryService(
            make_figure8_db(),
            ServiceConfig(max_workers=1, default_timeout_seconds=1e-9),
        )
        try:
            with pytest.raises(QueryTimeoutError):
                svc.execute(figure8_spec(("X", "Y")), "cb")
        finally:
            svc.shutdown()

    def test_execute_after_shutdown_rejected(self, service):
        service.shutdown()
        with pytest.raises(ServiceError):
            service.execute(figure8_spec(("X", "Y")))

    def test_strategy_counters(self, service):
        spec = figure8_spec(("X", "Y"))
        service.execute(spec, "cb")
        service.execute(spec, "cb")  # repository hit
        assert service.metrics["strategy_cb"] == 1
        assert service.metrics["strategy_cache"] == 1


class TestOverload:
    def test_overflowing_admission_queue_rejects(self):
        release = threading.Event()
        started = threading.Event()
        config = ServiceConfig(max_workers=1, max_concurrent=1, queue_depth=0)
        svc = QueryService(make_figure8_db(), config)
        spec = figure8_spec(("X", "Y"))

        # Occupy the only execution slot with a query blocked inside the
        # engine lock.
        def blocker():
            with svc._engine_lock:
                started.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=blocker)
        thread.start()
        started.wait(timeout=10)

        errors = []
        done = threading.Event()

        def occupant():
            try:
                svc.execute(spec, "cb")
            except Exception as error:  # pragma: no cover - defensive
                errors.append(error)
            finally:
                done.set()

        # First request occupies the slot (waiting on the engine lock)...
        occupant_thread = threading.Thread(target=occupant)
        occupant_thread.start()
        while svc._inflight < 1:
            pass
        # ... so the next is over the admission limit and must be rejected
        # immediately with the typed error.
        try:
            with pytest.raises(ServiceOverloadedError) as excinfo:
                svc.execute(spec, "cb")
            assert excinfo.value.inflight == 1
            assert excinfo.value.limit == 1
            assert svc.metrics["overload_rejected_total"] == 1
        finally:
            release.set()
            done.wait(timeout=10)
            thread.join(timeout=10)
            occupant_thread.join(timeout=10)
            svc.shutdown()
        assert not errors

    def test_queued_request_times_out_waiting(self):
        release = threading.Event()
        config = ServiceConfig(max_workers=1, max_concurrent=1, queue_depth=4)
        svc = QueryService(make_figure8_db(), config)
        spec = figure8_spec(("X", "Y"))
        # Hold the only slot directly so the next request must queue.
        assert svc._slots.acquire(timeout=1)
        try:
            with pytest.raises(QueryTimeoutError):
                svc.execute(spec, "cb", timeout=0.05)
            assert svc.metrics["deadline_exceeded_total"] == 1
        finally:
            svc._slots.release()
            release.set()
            svc.shutdown()


class TestSessions:
    def test_open_run_apply(self, service):
        sid = service.open_session(figure8_spec(("X", "Y")), "cb")
        cuboid, __ = service.session_run(sid)
        assert len(cuboid) > 0
        assert service.session_result(sid) is cuboid
        bigger, __ = service.session_apply(
            sid, "append", "Z", "location", "station"
        )
        assert service.sessions.get(sid).spec.template.length == 3
        assert service.sessions.get(sid).steps_executed == 2

    def test_unknown_operation(self, service):
        sid = service.open_session(figure8_spec(("X", "Y")))
        with pytest.raises(ServiceError):
            service.session_apply(sid, "frobnicate")

    def test_missing_session(self, service):
        with pytest.raises(SessionNotFoundError):
            service.session_run("nope")

    def test_close_session(self, service):
        sid = service.open_session(figure8_spec(("X", "Y")))
        assert service.close_session(sid)
        assert not service.close_session(sid)
        assert service.metrics["sessions_closed"] == 1

    def test_schema_operation(self, service):
        sid = service.open_session(figure8_spec(("X", "Y")), "cb")
        service.session_run(sid)
        service.session_apply(sid, "p_roll_up", "X")
        spec = service.sessions.get(sid).spec
        assert spec.template.symbol("X").level == "district"

    def test_session_eviction_drops_pipeline_state(self):
        config = ServiceConfig(max_workers=1, session_capacity=1)
        svc = QueryService(make_figure8_db(), config)
        try:
            spec_a = figure8_spec(("X", "Y"))
            sid_a = svc.open_session(spec_a, "ii")
            svc.session_run(sid_a)
            assert len(svc.engine.registry) > 0
            # A session over a *different* pipeline (different cluster-by)
            # evicts the first and orphans its pipeline state.
            spec_b = figure8_spec(("X", "Y"), group_by=(("card", "card"),))
            svc.open_session(spec_b, "cb")
            assert sid_a not in svc.sessions
            assert svc.metrics["sessions_evicted"] == 1
            assert svc.metrics["session_pipelines_dropped"] == 1
            # the evicted session's registry and sequence-cache entry died
            assert spec_a.pipeline_key() not in svc.engine.sequence_cache
            assert len(svc.engine.registry) == 0
            with pytest.raises(SessionNotFoundError):
                svc.session_run(sid_a)
        finally:
            svc.shutdown()

    def test_shared_pipeline_survives_one_eviction(self):
        config = ServiceConfig(max_workers=1, session_capacity=2)
        svc = QueryService(make_figure8_db(), config)
        try:
            spec = figure8_spec(("X", "Y"))
            sid_a = svc.open_session(spec, "ii")
            svc.session_run(sid_a)
            svc.open_session(spec, "ii")  # same pipeline
            # Third session (any pipeline) evicts sid_a, but the pipeline is
            # still referenced by the second session: state must survive.
            svc.open_session(figure8_spec(("X", "Y", "Z")), "cb")
            assert svc.metrics["sessions_evicted"] == 1
            assert svc.metrics["session_pipelines_dropped"] == 0
            assert len(svc.engine.registry) > 0
        finally:
            svc.shutdown()


class TestIndexBudget:
    def test_index_eviction_under_budget(self):
        config = ServiceConfig(max_workers=1, index_byte_budget=0)
        svc = QueryService(make_figure8_db(), config)
        try:
            svc.execute(figure8_spec(("X", "Y")), "ii")
            # a zero budget forces every index built by the query out again
            assert len(svc.engine.registry) == 0
            assert svc.metrics["indices_evicted"] > 0
            assert svc.metrics["index_bytes_evicted"] > 0
        finally:
            svc.shutdown()


class TestMetrics:
    def test_histogram_quantiles(self):
        histogram = LatencyHistogram()
        for __ in range(90):
            histogram.observe(0.0009)
        for __ in range(10):
            histogram.observe(7.0)
        assert histogram.count == 100
        assert histogram.quantile(0.5) == 0.001
        assert histogram.quantile(0.99) == 10.0
        assert histogram.mean() == pytest.approx((90 * 0.0009 + 70.0) / 100)
        assert histogram.snapshot()["max_seconds"] == 7.0

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_histogram_merge(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for __ in range(3):
            a.observe(0.0009)
        b.observe(0.0009)
        b.observe(7.0)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(4 * 0.0009 + 7.0)
        assert a.max_observed == 7.0
        assert a.quantile(0.5) == 0.001
        # the source histogram is left untouched
        assert b.count == 2

    def test_histogram_merge_rejects_mismatched_buckets(self):
        a = LatencyHistogram()
        b = LatencyHistogram(buckets=(0.5, float("inf")))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_metrics_render_includes_engine(self, service):
        service.execute(figure8_spec(("X", "Y")), "cb")
        report = service.render_report()
        assert "requests_total: 1" in report
        assert "sequence cache" in report
        assert "sessions:" in report

    def test_unknown_counter_reads_zero(self):
        metrics = ServiceMetrics()
        assert metrics["nonexistent"] == 0
        metrics.inc("nonexistent")
        assert metrics["nonexistent"] == 1

    def test_snapshot_shape(self, service):
        snap = service.snapshot()
        assert set(snap) >= {"counters", "latency", "engine", "sessions"}


class TestSplitChunks:
    def test_even_split(self):
        chunks = split_chunks(list(range(10)), 2)
        assert chunks == [list(range(5)), list(range(5, 10))]

    def test_remainder_spread(self):
        chunks = split_chunks(list(range(7)), 3)
        assert [len(c) for c in chunks] == [3, 2, 2]
        assert sum(chunks, []) == list(range(7))

    def test_more_chunks_than_items(self):
        chunks = split_chunks([1, 2], 8)
        assert chunks == [[1], [2]]

    def test_empty(self):
        # An empty selection must schedule zero shard tasks, not one
        # useless empty-shard task.
        assert split_chunks([], 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            split_chunks([1], 0)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_workers": 0},
            {"max_concurrent": 0},
            {"queue_depth": -1},
            {"session_capacity": 0},
            {"default_timeout_seconds": 0},
            {"index_byte_budget": -1},
            {"scan_shards": -1},
            {"session_byte_budget": -1},
            {"executor_backend": "bogus"},
            {"process_start_method": "bogus"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_effective_shards_defaults_to_workers(self):
        assert ServiceConfig(max_workers=3).effective_scan_shards == 3
        assert ServiceConfig(max_workers=3, scan_shards=2).effective_scan_shards == 2

    def test_service_rejects_bad_target(self):
        with pytest.raises(ServiceError):
            QueryService("not a db")


class TestExecutorBackends:
    def _serial_cells(self, db, spec):
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        return cuboid.cells

    def _scan(self, backend, db, spec):
        groups = build_sequence_groups(
            db, spec.where, spec.cluster_by, spec.sequence_by, spec.group_by
        )
        scanner = ParallelCBScanner(backend, shards=2, threshold=0)
        stats = QueryStats()
        cuboid = scanner(db, groups, spec, stats)
        return cuboid, stats

    def test_collect_or_cancel_cancels_pending_siblings(self):
        gate = threading.Event()
        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(gate.wait, 10)  # hold the only worker slot
            failed = Future()
            failed.set_exception(ValueError("shard failed"))
            pending = [pool.submit(time.sleep, 0) for __ in range(3)]
            # release the worker shortly after collection blocks in wait()
            threading.Timer(0.2, gate.set).start()
            with pytest.raises(ValueError):
                _collect_or_cancel([failed] + pending)
            gate.set()
            # the fix: siblings must not keep running/holding slots after
            # one shard fails — every queued future was cancelled
            assert all(f.cancelled() for f in pending)

    def test_collect_or_cancel_drains_real_pool(self):
        with ThreadPoolExecutor(max_workers=1) as pool:
            futures = [pool.submit(operator.truediv, 1, 0)]
            futures += [pool.submit(time.sleep, 0.01) for __ in range(3)]
            with pytest.raises(ZeroDivisionError):
                _collect_or_cancel(futures)
            assert all(f.done() for f in futures)

    def test_scanner_declines_empty_selection(self):
        db = make_figure8_db()
        spec = figure8_spec(
            ("X", "Y"),
            where=Comparison(EventField("card"), "=", Literal(-1)),
        )
        groups = build_sequence_groups(
            db, spec.where, spec.cluster_by, spec.sequence_by, spec.group_by
        )
        backend = SerialExecutorBackend()
        scanner = ParallelCBScanner(backend, shards=4, threshold=0)
        assert scanner(db, groups, spec, QueryStats()) is None

    def test_thread_and_process_backends_match_serial(self):
        db = make_figure8_db()
        spec = figure8_spec(("X", "Y"))
        expected = self._serial_cells(db, spec)
        backends = [
            SerialExecutorBackend(),
            ThreadExecutorBackend(2),
            ProcessExecutorBackend(db, 2),
        ]
        try:
            for backend in backends:
                cuboid, stats = self._scan(backend, db, spec)
                assert cuboid.cells == expected, backend.name
                assert stats.extra["scan_backend"] == backend.name
        finally:
            for backend in backends:
                backend.shutdown()

    def test_process_backend_spawn_context(self):
        db = make_figure8_db()
        spec = figure8_spec(("X", "Y"))
        backend = ProcessExecutorBackend(db, 2, start_method="spawn")
        try:
            backend.warm_up()
            cuboid, __ = self._scan(backend, db, spec)
            assert cuboid.cells == self._serial_cells(db, spec)
        finally:
            backend.shutdown()

    def test_process_backend_rejects_foreign_db(self):
        db = make_figure8_db()
        backend = ProcessExecutorBackend(db, 1)
        try:
            with pytest.raises(ServiceError):
                backend.run_shards(
                    make_figure8_db(), figure8_spec(("X", "Y")), [], None
                )
        finally:
            backend.shutdown()

    def test_service_wires_process_backend(self):
        config = ServiceConfig(
            max_workers=2,
            executor_backend="process",
            parallel_scan_threshold=1,
        )
        svc = QueryService(make_figure8_db(), config)
        try:
            spec = figure8_spec(("X", "Y"))
            cuboid, stats = svc.execute(spec, "cb")
            bare, __ = SOLAPEngine(make_figure8_db()).execute(spec, "cb")
            assert cuboid.cells == bare.cells
            assert stats.extra["scan_backend"] == "process"
            assert svc.metrics.scan_backend_counts() == {"process": 1}
            assert "backend=process" in repr(svc)
        finally:
            svc.close()

    def test_serial_backend_config_installs_no_scanner(self):
        svc = QueryService(
            make_figure8_db(),
            ServiceConfig(max_workers=2, executor_backend="serial"),
        )
        try:
            assert svc.backend is None
            assert svc.engine.cb_scanner is None
            spec = figure8_spec(("X", "Y"))
            __, stats = svc.execute(spec, "cb")
            assert "scan_backend" not in stats.extra
            assert svc.metrics.scan_backend_counts() == {"serial": 1}
        finally:
            svc.close()
