"""Unit tests for dictionary encoding and the compiled-matcher dispatch."""

import pickle

import pytest

from repro import CellRestriction, PatternSymbol, build_sequence_groups
from repro.core.matcher import (
    CompiledMatcher,
    TemplateMatcher,
    can_compile,
    kernel_mode,
    make_matcher,
    matcher_dispatch_counts,
)
from repro.core.stats import QueryStats
from repro.events.encoding import DimensionDictionary, EncodedSequenceStore
from tests.conftest import location_template, make_figure8_db

DOMAIN = ("location", "station")


class TestDimensionDictionary:
    def test_codes_are_dense_and_stable(self):
        d = DimensionDictionary()
        first = d.encode_value(DOMAIN, "Pentagon")
        second = d.encode_value(DOMAIN, "Wheaton")
        assert (first, second) == (0, 1)
        # re-encoding returns the same code
        assert d.encode_value(DOMAIN, "Pentagon") == first

    def test_domains_are_independent(self):
        d = DimensionDictionary()
        a = d.encode_value(("x", "base"), "v")
        b = d.encode_value(("y", "base"), "v")
        assert a == b == 0
        assert d.domain_size(("x", "base")) == 1

    def test_encode_row_and_decoder_roundtrip(self):
        d = DimensionDictionary()
        values = ["a", "b", "a", "c", "b"]
        row = d.encode_row(DOMAIN, values)
        decoder = d.decoder(DOMAIN)
        assert [decoder[code] for code in row] == values

    def test_lookup_without_interning(self):
        d = DimensionDictionary()
        assert d.lookup(DOMAIN, "missing") is None
        d.encode_value(DOMAIN, "present")
        assert d.lookup(DOMAIN, "present") == 0
        assert d.lookup(DOMAIN, "missing") is None

    def test_items_snapshot(self):
        d = DimensionDictionary()
        d.encode_row(DOMAIN, ["a", "b"])
        assert sorted(d.items(DOMAIN)) == [("a", 0), ("b", 1)]
        assert d.items(("no", "such")) == []

    def test_pickle_roundtrip_drops_and_recreates_lock(self):
        d = DimensionDictionary()
        d.encode_row(DOMAIN, ["a", "b", "c"])
        clone = pickle.loads(pickle.dumps(d))
        assert clone.lookup(DOMAIN, "b") == 1
        # the clone can keep interning (its lock was recreated)
        assert clone.encode_value(DOMAIN, "d") == 3


class TestEncodedSequenceStore:
    def _sequences(self):
        db = make_figure8_db()
        groups = build_sequence_groups(
            db, None, [("card", "card")], [("time", True)]
        )
        return db, list(groups.single_group())

    def test_rows_cached_per_sequence_object(self):
        db, sequences = self._sequences()
        store = db.encoding_store()
        seq = sequences[0]
        row = store.row(seq, "location", "station")
        assert store.row(seq, "location", "station") is row
        decoder = store.dictionary.decoder(DOMAIN)
        assert [decoder[c] for c in row] == list(
            seq.symbols("location", "station")
        )

    def test_store_is_per_database_singleton(self):
        db, __ = self._sequences()
        assert db.encoding_store() is db.encoding_store()

    def test_ensure_domain_complete_interns_whole_domain(self):
        db, __ = self._sequences()
        store = db.encoding_store()
        store.ensure_domain_complete(db, "location", "station")
        for value in db.distinct("location", "station"):
            assert store.dictionary.lookup(DOMAIN, value) is not None

    def test_store_pickles_with_data(self):
        db, sequences = self._sequences()
        store = db.encoding_store()
        store.row(sequences[0], "location", "station")
        store.ensure_domain_complete(db, "location", "station")
        clone = pickle.loads(pickle.dumps(store))
        assert clone.dictionary.lookup(DOMAIN, "Pentagon") is not None
        clone.ensure_domain_complete(db, "location", "station")  # no-op, no error


class TestCompiledMatcherDispatch:
    def test_make_matcher_compiles_plain_template(self):
        db = make_figure8_db()
        stats = QueryStats()
        matcher = make_matcher(
            location_template(("X", "Y")), db.schema, db=db, stats=stats
        )
        assert isinstance(matcher, CompiledMatcher)
        assert stats.extra["matcher"] == "compiled"

    def test_make_matcher_without_db_is_legacy(self):
        db = make_figure8_db()
        stats = QueryStats()
        matcher = make_matcher(location_template(("X", "Y")), db.schema, stats=stats)
        assert type(matcher) is TemplateMatcher
        assert stats.extra["matcher"] == "legacy"

    def test_kernel_mode_forces_legacy(self):
        db = make_figure8_db()
        with kernel_mode("legacy"):
            assert not can_compile(location_template(("X", "Y")), db)
            matcher = make_matcher(location_template(("X", "Y")), db.schema, db=db)
            assert type(matcher) is TemplateMatcher
        assert can_compile(location_template(("X", "Y")), db)

    def test_dispatch_counter_advances(self):
        db = make_figure8_db()
        before = matcher_dispatch_counts()["compiled"]
        make_matcher(location_template(("X", "Y")), db.schema, db=db)
        assert matcher_dispatch_counts()["compiled"] == before + 1

    def test_uncompilable_template_falls_back(self):
        """An unknown level makes the template uncompilable — make_matcher
        must fall back to the legacy matcher, not raise."""
        from repro.errors import SchemaError

        db = make_figure8_db()
        bad = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "galaxy")
        )
        with pytest.raises(SchemaError):
            db.schema.check_level("location", "galaxy")
        stats = QueryStats()
        matcher = make_matcher(bad, db.schema, db=db, stats=stats)
        assert type(matcher) is TemplateMatcher
        assert stats.extra["matcher"] == "fallback"
        assert not can_compile(bad, db)

    def test_compiled_results_match_legacy(self):
        db = make_figure8_db()
        groups = build_sequence_groups(
            db, None, [("card", "card")], [("time", True)]
        )
        template = location_template(("X", "Y", "X"))
        compiled = make_matcher(template, db.schema, db=db)
        legacy = TemplateMatcher(template, db.schema)
        for sequence in groups.single_group():
            assert compiled.assignments(sequence) == legacy.assignments(sequence)
            assert compiled.unique_instantiations(
                sequence
            ) == legacy.unique_instantiations(sequence)

    def test_compiled_respects_restrictions(self):
        db = make_figure8_db()
        groups = build_sequence_groups(
            db, None, [("card", "card")], [("time", True)]
        )
        template = location_template(("X", "Y"))
        for restriction in CellRestriction:
            compiled = make_matcher(template, db.schema, restriction, db=db)
            legacy = TemplateMatcher(template, db.schema, restriction)
            for sequence in groups.single_group():
                assert compiled.assignments(sequence) == legacy.assignments(
                    sequence
                )


class TestKeyInterning:
    def test_cell_key_returns_identical_object(self):
        db = make_figure8_db()
        matcher = TemplateMatcher(location_template(("X", "Y")), db.schema)
        first = matcher.cell_key(("Pentagon", "Wheaton"))
        second = matcher.cell_key(("Pentagon", "Wheaton"))
        assert first is second

    def test_positions_key_returns_identical_object(self):
        db = make_figure8_db()
        matcher = TemplateMatcher(location_template(("X", "Y", "X")), db.schema)
        first = matcher.positions_key(("Pentagon", "Wheaton"))
        second = matcher.positions_key(("Pentagon", "Wheaton"))
        assert first is second
        assert first == ("Pentagon", "Wheaton", "Pentagon")
