"""Unit tests for the query-language lexer."""

import pytest

from repro import QueryLanguageError
from repro.ql import TokenType, tokenize


def types(text):
    return [t.type for t in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestBasics:
    def test_identifiers_with_hyphens(self):
        tokens = tokenize("card-id AT fare-group")
        assert tokens[0].value == "card-id"
        assert tokens[2].value == "fare-group"

    def test_keywords_case_insensitive(self):
        token = tokenize("select")[0]
        assert token.is_keyword("SELECT")
        assert token.keyword == "SELECT"

    def test_numbers(self):
        assert values("42 -7 3.25") == ["42", "-7", "3.25"]
        assert types("42") == [TokenType.NUMBER]

    def test_number_then_dot_not_decimal(self):
        # "1." followed by non-digit: the dot is a separate token.
        tokens = tokenize("x1.action")
        assert [t.type for t in tokens[:3]] == [
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
        ]

    def test_strings_double_and_single_quoted(self):
        assert values('"in" \'out\'') == ["in", "out"]
        assert types('"in"') == [TokenType.STRING]

    def test_operators(self):
        assert values("= != < <= > >=") == ["=", "!=", "<", "<=", ">", ">="]

    def test_punctuation(self):
        assert types("( ) , . *") == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.STAR,
        ]

    def test_comments_skipped(self):
        assert values("SELECT -- a comment\nCOUNT") == ["SELECT", "COUNT"]

    def test_hyphenated_keyword_single_token(self):
        tokens = tokenize("LEFT-MAXIMALITY")
        assert tokens[0].value == "LEFT-MAXIMALITY"
        assert tokens[1].type is TokenType.EOF


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT\n  COUNT")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(QueryLanguageError):
            tokenize('"never closed')

    def test_unterminated_string_at_newline(self):
        with pytest.raises(QueryLanguageError):
            tokenize('"broken\n"')

    def test_unexpected_character(self):
        with pytest.raises(QueryLanguageError):
            tokenize("SELECT @")

    def test_bare_bang(self):
        with pytest.raises(QueryLanguageError):
            tokenize("a ! b")

    def test_error_carries_position(self):
        try:
            tokenize("SELECT\n  @")
        except QueryLanguageError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected QueryLanguageError")
