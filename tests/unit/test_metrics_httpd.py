"""Unit tests for the HTTP telemetry exporter (repro.obs.httpd)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import QueryService, ServiceConfig
from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE, MetricsServer
from repro.obs.metrics import MetricsRegistry
from tests.conftest import figure8_spec, make_figure8_db


def fetch(url: str):
    """(status, content_type, body_text) — 4xx/5xx do not raise."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), (
            error.read().decode("utf-8")
        )


@pytest.fixture
def server():
    registry = MetricsRegistry()
    registry.counter("demo_total", "A demo counter").inc(5)
    registry.histogram(
        "demo_seconds", "A demo histogram", buckets=(0.1, float("inf"))
    ).observe(0.05)
    with MetricsServer(registry, port=0) as srv:
        yield srv


def parse_prometheus(text: str):
    """{metric name: {label part: value}} plus the set of TYPE lines."""
    samples, types = {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            __, __, name, kind = line.split(" ")
            types[name] = kind
        elif line and not line.startswith("#"):
            key, value = line.rsplit(" ", 1)
            samples[key] = float(value.replace("+Inf", "inf"))
    return samples, types


class TestMetricsServer:
    def test_port_zero_binds_ephemeral(self, server):
        assert server.port != 0
        assert server.running
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_parses_as_prometheus_text(self, server):
        status, ctype, body = fetch(server.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        samples, types = parse_prometheus(body)
        assert types["demo_total"] == "counter"
        assert types["demo_seconds"] == "histogram"
        assert samples["demo_total"] == 5
        # histogram triple: cumulative buckets, sum, count
        assert samples['demo_seconds_bucket{le="0.1"}'] == 1
        assert samples['demo_seconds_bucket{le="+Inf"}'] == 1
        assert samples["demo_seconds_sum"] == pytest.approx(0.05)
        assert samples["demo_seconds_count"] == 1

    def test_healthz_ok(self, server):
        status, ctype, body = fetch(server.url + "/healthz")
        assert status == 200
        assert ctype == "application/json"
        assert json.loads(body) == {"status": "ok"}

    def test_healthz_unhealthy_is_503(self):
        registry = MetricsRegistry()
        with MetricsServer(
            registry, port=0, health_callback=lambda: False
        ) as srv:
            status, __, body = fetch(srv.url + "/healthz")
        assert status == 503
        assert json.loads(body) == {"status": "unhealthy"}

    def test_varz_returns_registry_snapshot(self, server):
        status, ctype, body = fetch(server.url + "/varz")
        assert status == 200
        doc = json.loads(body)
        assert doc["demo_total"]["series"][""] == 5.0

    def test_unknown_path_404(self, server):
        status, __, body = fetch(server.url + "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["paths"]

    def test_stop_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0).start()
        assert server.start() is server  # idempotent
        server.stop()
        assert not server.running
        server.stop()


class FakeWfile:
    """A response stream whose peer has hung up: every write raises."""

    def __init__(self, error=BrokenPipeError):
        self.error = error
        self.writes = 0

    def write(self, data):
        self.writes += 1
        raise self.error("client went away")

    def flush(self):
        pass


class FakeDisconnectedRequest:
    """Stub request whose socket dies once the body write starts.

    ``send_response``/``send_header``/``end_headers`` buffer like the real
    handler; the body write (``wfile.write``) raises, like a client that
    closed early.  After the first failure, even header writes fail —
    exactly the behaviour of a real dead socket, which is what made the
    old blanket-``except``-then-500 path re-raise.
    """

    def __init__(self, path="/metrics"):
        self.path = path
        self.wfile = FakeWfile()
        self.statuses = []

    def send_response(self, status):
        if self.wfile.writes:
            raise BrokenPipeError("client went away")
        self.statuses.append(status)

    def send_header(self, *args):
        if self.wfile.writes:
            raise BrokenPipeError("client went away")

    def end_headers(self):
        pass


class TestClientDisconnects:
    """Regression: a client hanging up mid-write must not crash handlers.

    Pre-fix, ``wfile.write`` raised ``BrokenPipeError``, the blanket
    ``except`` in ``_handle`` tried to write a 500 to the same dead
    socket, and the second raise escaped — killing the handler thread
    with a traceback on stderr.
    """

    def test_handle_swallows_broken_pipe(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "demo").inc()
        server = MetricsServer(registry)
        request = FakeDisconnectedRequest("/metrics")
        server._handle(request)  # must not raise
        # the handler tried exactly one response (200), never a 500 retry
        assert request.statuses == [200]

    def test_handle_swallows_connection_reset(self):
        server = MetricsServer(MetricsRegistry())
        request = FakeDisconnectedRequest("/healthz")
        request.wfile = FakeWfile(ConnectionResetError)
        server._handle(request)  # must not raise
        assert request.statuses == [200]

    def test_respond_swallows_disconnect_during_headers(self):
        request = FakeDisconnectedRequest("/metrics")
        request.send_response = FakeWfile(ConnectionResetError).write
        MetricsServer._respond(
            request, 200, "application/json", b"{}"
        )  # must not raise

    def test_server_survives_early_socket_close(self, server):
        # A real socket that sends the request then resets immediately;
        # the server must stay healthy for the next client either way.
        import socket
        import struct

        for __ in range(3):
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            )
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),  # RST on close
            )
            sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            sock.close()
        status, __, body = fetch(server.url + "/metrics")
        assert status == 200
        assert "demo_total" in body


class TestServiceExporter:
    def test_service_serves_metrics_while_querying(self):
        config = ServiceConfig(expose_metrics_port=0)
        with QueryService(make_figure8_db(), config) as service:
            assert service.metrics_server is not None
            assert service.metrics_server.running
            url = service.metrics_server.url
            service.execute(figure8_spec(("X", "Y")), "cb")
            service.execute(figure8_spec(("X", "Y")), "cb")

            status, __, body = fetch(url + "/metrics")
            assert status == 200
            samples, types = parse_prometheus(body)
            assert types["solap_engine_queries_total"] == "counter"
            assert samples['solap_engine_queries_total{strategy="cb"}'] == 1
            assert (
                samples['solap_engine_queries_total{strategy="cache"}'] == 1
            )
            assert samples["solap_service_requests_total"] == 2
            assert samples["solap_service_query_latency_seconds_count"] == 2

            status, __, body = fetch(url + "/healthz")
            assert status == 200

            status, __, body = fetch(url + "/varz")
            snapshot = json.loads(body)
            assert snapshot["counters"]["queries_ok"] == 2

        # shutdown stops the exporter
        assert not service.metrics_server.running

    def test_kwarg_overrides_config(self):
        with QueryService(
            make_figure8_db(), expose_metrics_port=0
        ) as service:
            assert service.metrics_server is not None
            status, __, __body = fetch(
                service.metrics_server.url + "/healthz"
            )
            assert status == 200


class TestDebugTraces:
    def make_recorder_with_traces(self, n=3):
        from repro.obs.recorder import FlightRecorder
        from repro.obs.spans import Tracer, span

        recorder = FlightRecorder(capacity=8)
        for index in range(n):
            with Tracer("query") as tracer:
                with span("aggregation"):
                    pass

            class Stats:
                trace = tracer.root
                strategy = "CB"
                sequences_scanned = index
                extra = {"shard_fanout": 2, "scan_backend": "thread"}
                plan = None

            recorder.record(
                stats=Stats(), query_id=f"q{index}", wall_seconds=0.001
            )
        return recorder

    def test_traces_404_without_recorder(self, server):
        status, __, body = fetch(server.url + "/debug/traces")
        assert status == 404
        assert "not enabled" in json.loads(body)["error"]

    def test_traces_listing_and_entry(self):
        recorder = self.make_recorder_with_traces(3)
        with MetricsServer(
            MetricsRegistry(), port=0, recorder=recorder
        ) as srv:
            status, ctype, body = fetch(srv.url + "/debug/traces")
            assert status == 200 and ctype == "application/json"
            traces = json.loads(body)["traces"]
            assert len(traces) == 3
            # newest first
            assert traces[0]["query_id"] == "q2"
            entry_id = traces[0]["id"]

            status, __, body = fetch(srv.url + f"/debug/traces/{entry_id}")
            assert status == 200
            entry = json.loads(body)
            assert entry["summary"]["id"] == entry_id
            assert entry["trace"]["trace_schema"] == 2
            assert entry["trace"]["root"]["name"] == "query"

    def test_traces_limit_and_bad_limit(self):
        recorder = self.make_recorder_with_traces(3)
        with MetricsServer(
            MetricsRegistry(), port=0, recorder=recorder
        ) as srv:
            status, __, body = fetch(srv.url + "/debug/traces?limit=1")
            assert status == 200
            assert len(json.loads(body)["traces"]) == 1

            status, __, body = fetch(srv.url + "/debug/traces?limit=nope")
            assert status == 400
            assert "bad limit" in json.loads(body)["error"]

    def test_traces_zero_and_negative_limits_are_400(self):
        # limit<1 used to be silently clamped to 1; it must be rejected
        # like any other malformed limit, never reinterpreted.
        recorder = self.make_recorder_with_traces(3)
        with MetricsServer(
            MetricsRegistry(), port=0, recorder=recorder
        ) as srv:
            for bad in ("0", "-3"):
                status, __, body = fetch(
                    srv.url + f"/debug/traces?limit={bad}"
                )
                assert status == 400, bad
                assert "must be >= 1" in json.loads(body)["error"]

    def test_unknown_trace_id_404(self):
        recorder = self.make_recorder_with_traces(1)
        with MetricsServer(
            MetricsRegistry(), port=0, recorder=recorder
        ) as srv:
            status, __, body = fetch(srv.url + "/debug/traces/t999999")
            assert status == 404
            assert "t999999" in json.loads(body)["error"]

    def test_lookup_by_trace_id_falls_back(self):
        recorder = self.make_recorder_with_traces(1)
        trace_id = recorder.recent()[0]["trace_id"]
        with MetricsServer(
            MetricsRegistry(), port=0, recorder=recorder
        ) as srv:
            status, __, body = fetch(srv.url + f"/debug/traces/{trace_id}")
            assert status == 200
            assert json.loads(body)["summary"]["trace_id"] == trace_id

    def test_service_wires_recorder_into_exporter(self):
        config = ServiceConfig(expose_metrics_port=0)
        with QueryService(make_figure8_db(), config) as service:
            url = service.metrics_server.url
            service.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
            status, __, body = fetch(url + "/debug/traces")
            assert status == 200
            traces = json.loads(body)["traces"]
            assert len(traces) >= 1
            assert traces[0]["trace_id"]

            status, __, body = fetch(url + "/varz")
            assert json.loads(body)["flight_recorder"]["recorded"] >= 1

    def test_recorder_disabled_by_config(self):
        config = ServiceConfig(
            expose_metrics_port=0, flight_recorder_capacity=0
        )
        with QueryService(make_figure8_db(), config) as service:
            assert service.recorder is None
            status, __, __body = fetch(
                service.metrics_server.url + "/debug/traces"
            )
            assert status == 404
