"""Unit tests for the counter-based strategy on hand-verified cases."""


from repro import (
    AggregateScope,
    AggregateSpec,
    SOLAPEngine,
    build_sequence_groups,
    counter_based_cuboid,
)
from repro.core import operations as ops
from repro.core.counter_based import group_is_selected
from repro.core.stats import QueryStats
from tests.conftest import figure8_spec, make_figure8_db


def run_cb(spec, db=None):
    db = db or make_figure8_db()
    groups = build_sequence_groups(
        db, spec.where, spec.cluster_by, spec.sequence_by, spec.group_by
    )
    stats = QueryStats()
    cuboid = counter_based_cuboid(db, groups, spec, stats)
    return cuboid, stats


class TestGroupSelection:
    def test_scalar_slice(self):
        assert group_is_selected(("D10", 3), {0: "D10"})
        assert not group_is_selected(("D20", 3), {0: "D10"})

    def test_dice_membership(self):
        assert group_is_selected(("D10",), {0: ("D10", "D20")})
        assert not group_is_selected(("D30",), {0: ("D10", "D20")})

    def test_multiple_constraints(self):
        assert group_is_selected(("D10", 3), {0: "D10", 1: 3})
        assert not group_is_selected(("D10", 4), {0: "D10", 1: 3})


class TestHandVerifiedCounts:
    def test_length_one_counts_distinct_stations_per_sequence(self):
        # (X): each sequence contributes 1 per distinct station it visits.
        cuboid, stats = run_cb(figure8_spec(("X",)))
        assert cuboid.count(("Pentagon",)) == 3  # s1, s2, s3
        assert cuboid.count(("Wheaton",)) == 3  # s1, s2, s4
        assert cuboid.count(("Deanwood",)) == 1  # s4
        assert stats.sequences_scanned == 4

    def test_repeated_symbol_counts(self):
        cuboid, __ = run_cb(figure8_spec(("X", "X")))
        # (Pentagon, Pentagon) only in s1; (Wheaton, Wheaton) in s1 and s2.
        assert cuboid.count(("Pentagon",)) == 1
        assert cuboid.count(("Wheaton",)) == 2
        assert len(cuboid) == 2

    def test_grouped_counts(self):
        spec = figure8_spec(("X", "Y"), group_by=(("location", "district"),))
        cuboid, __ = run_cb(spec)
        # group key = district of first event: s3(D10), s2(D10), s1(D20), s4(D20)
        assert cuboid.count(("Clarendon", "Pentagon"), ("D10",)) == 1
        assert cuboid.count(("Glenmont", "Pentagon"), ("D20",)) == 1
        assert cuboid.count(("Glenmont", "Pentagon"), ("D10",)) == 0

    def test_global_slice_skips_groups_entirely(self):
        spec = ops.slice_global(
            figure8_spec(("X", "Y"), group_by=(("location", "district"),)),
            "location",
            "D10",
        )
        cuboid, stats = run_cb(spec)
        assert cuboid.group_keys() == (("D10",),)
        assert stats.sequences_scanned == 2  # only the D10 group scanned

    def test_measure_aggregate_values(self):
        spec = figure8_spec(
            ("X", "Y"),
            aggregates=(
                AggregateSpec("COUNT"),
                AggregateSpec("SUM", "amount"),
            ),
        )
        cuboid, __ = run_cb(spec)
        # (Clarendon, Pentagon) content is s3's two events: 0.0 + -2.0
        values = cuboid.cells[((), ("Clarendon", "Pentagon"))]
        assert values["COUNT(*)"] == 1
        assert values["SUM(amount)"] == -2.0

    def test_sum_over_sequence_scope(self):
        spec = figure8_spec(
            ("X", "Y"),
            aggregates=(
                AggregateSpec("SUM", "amount", AggregateScope.SEQUENCE),
            ),
        )
        cuboid, __ = run_cb(spec)
        # (Glenmont, Pentagon) assigned from s1 (6 events, three -2.0 fares)
        assert cuboid.cells[((), ("Glenmont", "Pentagon"))][
            "SUM(amount)"
        ] == -6.0

    def test_stats_default_strategy_label(self):
        __, stats = run_cb(figure8_spec(("X",)))
        assert stats.strategy == "CB"

    def test_matches_engine_execution(self):
        db = make_figure8_db()
        spec = figure8_spec(("X", "Y", "Y", "X"))
        direct, __ = run_cb(spec, db)
        via_engine, __ = SOLAPEngine(db).execute(spec, "cb")
        assert direct.to_dict() == via_engine.to_dict()
