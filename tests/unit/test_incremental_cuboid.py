"""Unit tests for incremental cuboid maintenance on partitioned appends."""

import pytest

from repro import EngineError, SpecError
from repro.core.spec import CuboidSpec, PatternTemplate
from repro.datagen.transit import (
    MINUTES_PER_DAY,
    TransitConfig,
    build_schema,
    generate_database,
    in_out_predicate,
)
from repro.events.database import EventDatabase
from repro.extensions import IncrementalCuboidMaintainer


def daily_spec(with_predicate=True) -> CuboidSpec:
    template = PatternTemplate.substring(
        ("X", "Y"),
        {"X": ("location", "station"), "Y": ("location", "station")},
    )
    return CuboidSpec(
        template=template,
        cluster_by=(("card-id", "individual"), ("time", "day")),
        sequence_by=(("time", True),),
        group_by=(("time", "day"),),
        predicate=in_out_predicate(("x1", "y1")) if with_predicate else None,
    )


def events_by_day(config):
    full = generate_database(config)
    by_day = {}
    for event in full:
        by_day.setdefault(int(event["time"]) // MINUTES_PER_DAY, []).append(
            event.to_dict()
        )
    return by_day


def make_maintainer(config, spec=None):
    db = EventDatabase(build_schema(config))
    return IncrementalCuboidMaintainer(
        db,
        spec or daily_spec(),
        partition_attribute="time",
        partition_of=lambda e: int(e["time"]) // MINUTES_PER_DAY,
    )


class TestPreconditions:
    def test_partition_must_be_in_cluster_by(self):
        config = TransitConfig(n_cards=5, n_days=1, seed=1)
        db = EventDatabase(build_schema(config))
        from dataclasses import replace

        bad = replace(daily_spec(), cluster_by=(("card-id", "individual"),))
        with pytest.raises(SpecError):
            IncrementalCuboidMaintainer(
                db, bad, "time", lambda e: 0
            )

    def test_partition_must_be_in_group_by(self):
        config = TransitConfig(n_cards=5, n_days=1, seed=1)
        db = EventDatabase(build_schema(config))
        from dataclasses import replace

        bad = replace(daily_spec(), group_by=())
        with pytest.raises(SpecError):
            IncrementalCuboidMaintainer(db, bad, "time", lambda e: 0)


class TestIngestion:
    def test_day_by_day_equals_recompute(self):
        config = TransitConfig(n_cards=50, n_days=3, seed=61)
        maintainer = make_maintainer(config)
        for day, events in sorted(events_by_day(config).items()):
            touched = maintainer.ingest(events)
            assert touched == [day]
            assert maintainer.verify_against_recompute()

    def test_cuboid_grows_with_days(self):
        config = TransitConfig(n_cards=30, n_days=2, seed=62)
        maintainer = make_maintainer(config)
        by_day = sorted(events_by_day(config).items())
        maintainer.ingest(by_day[0][1])
        first = len(maintainer.cuboid)
        maintainer.ingest(by_day[1][1])
        assert len(maintainer.cuboid) > first
        assert maintainer.partitions() == (0, 1)

    def test_multi_partition_batch(self):
        config = TransitConfig(n_cards=20, n_days=2, seed=63)
        maintainer = make_maintainer(config)
        all_events = [
            e for __, events in sorted(events_by_day(config).items()) for e in events
        ]
        touched = maintainer.ingest(all_events)
        assert sorted(touched) == [0, 1]
        assert maintainer.verify_against_recompute()

    def test_late_arrival_rejected_atomically(self):
        config = TransitConfig(n_cards=20, n_days=2, seed=64)
        maintainer = make_maintainer(config)
        by_day = sorted(events_by_day(config).items())
        maintainer.ingest(by_day[0][1])
        before = len(maintainer.db)
        with pytest.raises(EngineError):
            maintainer.ingest(by_day[0][1])  # same partition again
        assert len(maintainer.db) == before  # nothing appended
        assert maintainer.verify_against_recompute()

    def test_snapshot_is_isolated(self):
        config = TransitConfig(n_cards=10, n_days=1, seed=65)
        maintainer = make_maintainer(config)
        maintainer.ingest(next(iter(events_by_day(config).values())))
        snapshot = maintainer.cuboid
        key = next(iter(snapshot.cells))
        snapshot.cells[key]["COUNT(*)"] = -1
        assert maintainer.cuboid.cells[key]["COUNT(*)"] != -1

    def test_with_where_clause(self):
        from dataclasses import replace

        from repro.events.expression import Comparison, EventField, Literal

        config = TransitConfig(n_cards=25, n_days=2, seed=66)
        spec = replace(
            daily_spec(),
            where=Comparison(EventField("location"), "!=", Literal("Rosslyn")),
        )
        maintainer = make_maintainer(config, spec)
        for __, events in sorted(events_by_day(config).items()):
            maintainer.ingest(events)
        assert maintainer.verify_against_recompute()
