"""Unit tests for cross-vendor federated sequence analysis (Section 6(3))."""

import random

import pytest

from repro import Dimension, EventDatabase, Schema
from repro.core.spec import PatternTemplate
from repro.errors import EngineError
from repro.extensions import FederationCoordinator, VendorSite, pseudonymize


def make_subway_db(cards):
    schema = Schema([Dimension("time"), Dimension("card"), Dimension("station")])
    db = EventDatabase(schema)
    rng = random.Random(1)
    stations = ["Pentagon", "Wheaton", "Glenmont"]
    for card in cards:
        for trip in range(2):
            origin = stations[rng.randrange(3)]
            destination = stations[(stations.index(origin) + 1) % 3]
            base = trip * 100
            db.append({"time": base, "card": card, "station": origin})
            db.append({"time": base + 10, "card": card, "station": destination})
    return db


def make_bus_db(cards):
    schema = Schema([Dimension("time"), Dimension("card"), Dimension("route")])
    db = EventDatabase(schema)
    for card in cards:
        db.append({"time": 50, "card": card, "route": f"B{card % 3}"})
    return db


def subway_template():
    return PatternTemplate.substring(
        ("X", "Y"), {"X": ("station", "station"), "Y": ("station", "station")}
    )


def bus_template():
    return PatternTemplate.substring(("R",), {"R": ("route", "route")})


def make_sites(subway_cards, bus_cards, salt="shared-salt"):
    subway = VendorSite(
        "subway",
        make_subway_db(subway_cards),
        join_key="card",
        cluster_by=(("card", "card"),),
        sequence_by=(("time", True),),
        salt=salt,
    )
    bus = VendorSite(
        "bus",
        make_bus_db(bus_cards),
        join_key="card",
        cluster_by=(("card", "card"),),
        sequence_by=(("time", True),),
        salt=salt,
    )
    return subway, bus


class TestPseudonyms:
    def test_deterministic_per_salt(self):
        assert pseudonymize(42, "s") == pseudonymize(42, "s")

    def test_salt_changes_pseudonym(self):
        assert pseudonymize(42, "a") != pseudonymize(42, "b")

    def test_no_raw_value_leak(self):
        assert "42" not in pseudonymize(42, "salt-xyz")


class TestVendorSite:
    def test_pattern_lists_contain_only_pseudonyms(self):
        subway, __ = make_sites(range(10), range(5))
        lists = subway.pattern_lists(subway_template())
        assert lists
        for ids in lists.values():
            for pseudonym in ids:
                assert isinstance(pseudonym, str)
                assert len(pseudonym) == 16

    def test_population_matches_card_count(self):
        subway, bus = make_sites(range(10), range(5))
        assert len(subway.population()) == 10
        assert len(bus.population()) == 5


class TestJoinKeyValidation:
    def test_missing_join_key_raises_typed_error(self):
        # The site was configured with a join key its schema doesn't
        # carry; the raw KeyError this used to raise identified neither
        # the site nor the attribute.
        site = VendorSite(
            "subway",
            make_subway_db(range(4)),
            join_key="loyalty_id",
            cluster_by=(("card", "card"),),
            sequence_by=(("time", True),),
            salt="s",
        )
        with pytest.raises(EngineError) as excinfo:
            site.pattern_lists(subway_template())
        assert "subway" in str(excinfo.value)
        assert "loyalty_id" in str(excinfo.value)

    def test_varying_join_key_within_sequence_raises(self):
        # Clustering by station mixes several cards into one sequence, so
        # no single pseudonym owns it: attributing the whole sequence to
        # event(0)'s card (the old behaviour) silently corrupted lists.
        db = make_subway_db(range(4))
        site = VendorSite(
            "subway",
            db,
            join_key="card",
            cluster_by=(("station", "station"),),
            sequence_by=(("time", True),),
            salt="s",
        )
        with pytest.raises(EngineError) as excinfo:
            site.pattern_lists(subway_template())
        assert "varies" in str(excinfo.value)
        assert "card" in str(excinfo.value)

    def test_valid_configuration_still_works(self):
        subway, __ = make_sites(range(6), range(6))
        assert subway.pattern_lists(subway_template())


class TestCoordinator:
    def test_needs_two_sites(self):
        subway, __ = make_sites(range(4), range(4))
        with pytest.raises(EngineError):
            FederationCoordinator([subway])

    def test_shared_customers(self):
        subway, bus = make_sites(range(20), range(10, 25))
        coordinator = FederationCoordinator([subway, bus], min_count=1)
        # overlap = cards 10..19
        assert coordinator.shared_customers() == 10

    def test_shared_customers_thresholded(self):
        subway, bus = make_sites(range(5), range(3, 8))  # overlap 2
        coordinator = FederationCoordinator([subway, bus], min_count=5)
        assert coordinator.shared_customers() == 0

    def test_cross_counts_match_ground_truth(self):
        shared = list(range(30))
        subway, bus = make_sites(shared, shared)
        coordinator = FederationCoordinator([subway, bus], min_count=1)
        counts = coordinator.cross_counts(
            {"subway": subway_template(), "bus": bus_template()}
        )
        assert counts
        # Ground truth by direct (non-private) computation: every card
        # rides exactly one bus route, so summing a subway pattern's
        # cross-cells over routes gives that pattern's subway count.
        subway_lists = subway.pattern_lists(subway_template())
        for subway_pattern, ids in subway_lists.items():
            total = sum(
                count
                for (sp, __bp), count in counts.items()
                if sp == subway_pattern
            )
            assert total == len(ids)

    def test_min_count_suppresses_small_cells(self):
        shared = list(range(30))
        subway, bus = make_sites(shared, shared)
        open_coord = FederationCoordinator([subway, bus], min_count=1)
        strict = FederationCoordinator([subway, bus], min_count=8)
        open_counts = open_coord.cross_counts(
            {"subway": subway_template(), "bus": bus_template()}
        )
        strict_counts = strict.cross_counts(
            {"subway": subway_template(), "bus": bus_template()}
        )
        assert set(strict_counts) <= set(open_counts)
        assert all(count >= 8 for count in strict_counts.values())

    def test_missing_template_raises(self):
        subway, bus = make_sites(range(6), range(6))
        coordinator = FederationCoordinator([subway, bus], min_count=1)
        with pytest.raises(EngineError):
            coordinator.cross_counts({"subway": subway_template()})

    def test_disjoint_populations_yield_nothing(self):
        subway, bus = make_sites(range(10), range(100, 110))
        coordinator = FederationCoordinator([subway, bus], min_count=1)
        counts = coordinator.cross_counts(
            {"subway": subway_template(), "bus": bus_template()}
        )
        assert counts == {}
