"""Unit tests for OD-matrix reporting."""

import pytest

from repro import SCuboid, SOLAPEngine, SpecError
from repro.core.spec import CuboidSpec, PatternTemplate
from repro.datagen import TransitConfig, generate_transit
from repro.datagen.transit import in_out_predicate
from repro.reports import ODMatrix, daily_od_matrices, od_matrix_from_cuboid
from tests.conftest import figure8_spec


def make_matrix():
    return ODMatrix(
        origins=("A", "B"),
        destinations=("A", "B", "C"),
        counts={("A", "B"): 5, ("A", "C"): 2, ("B", "A"): 3},
    )


class TestODMatrix:
    def test_counts_and_rows(self):
        matrix = make_matrix()
        assert matrix.count("A", "B") == 5
        assert matrix.count("C", "A") == 0
        assert matrix.row("A") == [0, 5, 2]

    def test_totals(self):
        matrix = make_matrix()
        assert matrix.total() == 10
        assert matrix.outbound_totals() == {"A": 7, "B": 3}
        assert matrix.inbound_totals() == {"A": 3, "B": 5, "C": 2}

    def test_busiest_pair(self):
        assert make_matrix().busiest_pair() == ("A", "B", 5)

    def test_busiest_pair_empty(self):
        empty = ODMatrix((), (), {})
        assert empty.busiest_pair() is None

    def test_render_contains_totals(self):
        text = make_matrix().render()
        assert "O\\D" in text
        assert "total" in text
        assert "10" in text  # grand total


class TestFromCuboid:
    def test_cross_tabulation(self):
        spec = figure8_spec(("X", "Y"))
        cuboid = SCuboid(
            spec,
            {
                ((), ("Pentagon", "Wheaton")): {"COUNT(*)": 4},
                ((), ("Wheaton", "Pentagon")): {"COUNT(*)": 1},
            },
        )
        matrix = od_matrix_from_cuboid(cuboid)
        assert matrix.count("Pentagon", "Wheaton") == 4
        assert matrix.total() == 5

    def test_requires_two_dims(self):
        spec = figure8_spec(("X", "Y", "Z"))
        cuboid = SCuboid(spec, {})
        with pytest.raises(SpecError):
            od_matrix_from_cuboid(cuboid)

    def test_zero_cells_skipped(self):
        spec = figure8_spec(("X", "Y"))
        cuboid = SCuboid(spec, {((), ("A", "B")): {"COUNT(*)": 0}})
        matrix = od_matrix_from_cuboid(cuboid)
        assert matrix.total() == 0
        assert matrix.origins == ()


class TestDailyMatrices:
    def make_spec(self):
        template = PatternTemplate.substring(
            ("X", "Y"),
            {"X": ("location", "station"), "Y": ("location", "station")},
        )
        return CuboidSpec(
            template=template,
            cluster_by=(("card-id", "individual"), ("time", "day")),
            sequence_by=(("time", True),),
            group_by=(("time", "day"),),
            predicate=in_out_predicate(("x1", "y1")),
        )

    def test_one_matrix_per_day(self):
        db = generate_transit(TransitConfig(n_cards=40, n_days=3, seed=91))
        matrices = daily_od_matrices(SOLAPEngine(db), self.make_spec())
        assert set(matrices) == {0, 1, 2}
        for matrix in matrices.values():
            assert matrix.total() > 0

    def test_requires_group_by(self):
        db = generate_transit(TransitConfig(n_cards=10, n_days=1, seed=92))
        spec = self.make_spec()
        from dataclasses import replace

        with pytest.raises(SpecError):
            daily_od_matrices(SOLAPEngine(db), replace(spec, group_by=()))

    def test_matrix_matches_cuboid_counts(self):
        db = generate_transit(TransitConfig(n_cards=30, n_days=2, seed=93))
        engine = SOLAPEngine(db)
        spec = self.make_spec()
        cuboid, __ = engine.execute(spec, "cb")
        matrices = daily_od_matrices(engine, spec)
        for group_key in cuboid.group_keys():
            day = group_key[0]
            for g, (origin, destination), values in cuboid:
                if g != group_key:
                    continue
                assert matrices[day].count(origin, destination) == values[
                    "COUNT(*)"
                ]
