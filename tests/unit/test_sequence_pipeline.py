"""Unit tests for sequence formation (pipeline steps 1-4)."""

import pytest

from repro import Comparison, EventField, Literal, SpecError, build_sequence_groups
from repro.events.sequence import (
    cluster_events,
    form_sequences,
    group_sequences,
    select_events,
)
from tests.conftest import make_figure8_db


class TestSelection:
    def test_no_predicate_selects_all(self):
        db = make_figure8_db()
        assert len(select_events(db, None)) == len(db)

    def test_predicate_filters(self):
        db = make_figure8_db()
        rows = select_events(
            db, Comparison(EventField("card"), "=", Literal(688))
        )
        assert len(rows) == 6


class TestClustering:
    def test_cluster_by_card(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        assert len(clusters) == 4
        assert len(clusters[(688,)]) == 6

    def test_cluster_requires_attributes(self):
        db = make_figure8_db()
        with pytest.raises(SpecError):
            cluster_events(db, range(len(db)), [])

    def test_cluster_at_level(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("location", "district")])
        assert set(clusters) == {("D10",), ("D20",), ("D30",)}


class TestSequenceFormation:
    def test_sequences_are_ordered(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        sequences = form_sequences(db, clusters, [("time", True)])
        assert len(sequences) == 4
        for sequence in sequences:
            times = [event["time"] for event in sequence.events()]
            assert times == sorted(times)

    def test_descending_order(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        sequences = form_sequences(db, clusters, [("time", False)])
        for sequence in sequences:
            times = [event["time"] for event in sequence.events()]
            assert times == sorted(times, reverse=True)

    def test_sids_are_dense_and_deterministic(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        first = form_sequences(db, clusters, [("time", True)])
        second = form_sequences(db, clusters, [("time", True)])
        assert [s.sid for s in first] == [0, 1, 2, 3]
        assert [s.rows for s in first] == [s.rows for s in second]

    def test_sid_start_offset(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        sequences = form_sequences(db, clusters, [("time", True)], sid_start=10)
        assert [s.sid for s in sequences] == [10, 11, 12, 13]

    def test_requires_ordering(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        with pytest.raises(SpecError):
            form_sequences(db, clusters, [])

    def test_symbols_caching(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        sequence = form_sequences(db, clusters, [("time", True)])[0]
        first = sequence.symbols("location", "district")
        assert sequence.symbols("location", "district") is first

    def test_measure_values(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        sequence = form_sequences(db, clusters, [("time", True)])[0]
        values = sequence.measure_values("amount")
        assert len(values) == len(sequence)


class TestGrouping:
    def test_empty_group_by_gives_single_group(self):
        db = make_figure8_db()
        groups = build_sequence_groups(
            db, None, [("card", "card")], [("time", True)]
        )
        assert len(groups) == 1
        assert groups.single_group().key == ()
        assert groups.total_sequences() == 4

    def test_group_by_district_of_first_event(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        sequences = form_sequences(db, clusters, [("time", True)])
        groups = group_sequences(db, sequences, [("location", "district")])
        # First stations: 77->Wheaton(D20), 688->Glenmont(D20),
        # 1012->Clarendon(D10), 23456->Pentagon(D10)
        assert {g.key for g in groups} == {("D10",), ("D20",)}
        assert len(groups.group(("D10",))) == 2

    def test_single_group_raises_when_multiple(self):
        db = make_figure8_db()
        clusters = cluster_events(db, range(len(db)), [("card", "card")])
        sequences = form_sequences(db, clusters, [("time", True)])
        groups = group_sequences(db, sequences, [("location", "district")])
        with pytest.raises(SpecError):
            groups.single_group()

    def test_group_by_sid_lookup(self):
        db = make_figure8_db()
        groups = build_sequence_groups(
            db, None, [("card", "card")], [("time", True)]
        )
        group = groups.single_group()
        for sequence in group:
            assert group.by_sid(sequence.sid) is sequence

    def test_all_sequences_iteration(self):
        db = make_figure8_db()
        groups = build_sequence_groups(
            db, None, [("card", "card")], [("time", True)]
        )
        assert len(list(groups.all_sequences())) == 4

    def test_where_clause_flows_through(self):
        db = make_figure8_db()
        groups = build_sequence_groups(
            db,
            Comparison(EventField("card"), "=", Literal(688)),
            [("card", "card")],
            [("time", True)],
        )
        assert groups.total_sequences() == 1
        assert len(next(iter(groups.all_sequences()))) == 6
