"""Unit tests for the EXPLAIN facility and the QueryPlan container."""

import pytest

from repro import SOLAPEngine
from repro.core import explain
from repro.core import operations as ops
from repro.core.explain import QueryPlan
from repro.index.registry import base_template
from tests.conftest import figure8_spec, make_figure8_db


@pytest.fixture
def engine():
    return SOLAPEngine(make_figure8_db())


class TestQueryPlan:
    def test_render_indents_by_depth(self):
        plan = QueryPlan()
        plan.add("root")
        plan.add("child", 1)
        plan.add("grandchild", 2)
        assert plan.render() == "root\n  child\n    grandchild"

    def test_contains_matches_substrings_at_any_depth(self):
        plan = QueryPlan()
        plan.add("header")
        plan.add("strategy: CB (cost model predicts II)", 1)
        assert "strategy: CB" in plan
        assert "cost model predicts" in plan
        assert "strategy: II (" not in plan
        assert "missing" not in plan

    def test_empty_plan(self):
        plan = QueryPlan()
        assert plan.render() == ""
        assert "anything" not in plan

    def test_str_is_render(self):
        plan = QueryPlan()
        plan.add("a")
        plan.add("b", 3)
        assert str(plan) == plan.render()
        assert plan.render().splitlines()[1] == "      b"

    def test_deep_nesting_preserved(self):
        plan = QueryPlan()
        for depth in range(6):
            plan.add(f"level{depth}", depth)
        lines = plan.render().splitlines()
        for depth, line in enumerate(lines):
            assert line == "  " * depth + f"level{depth}"


class TestExplain:
    def test_cold_plan_mentions_cold_build(self, engine):
        plan = explain(engine, figure8_spec(("X", "Y")))
        assert "cuboid repository: miss" in plan
        assert "cold — build base index" in plan
        assert "recommended strategy" in plan

    def test_repository_hit_short_circuits(self, engine):
        spec = figure8_spec(("X", "Y"))
        engine.execute(spec, "cb")
        plan = explain(engine, spec)
        assert "cuboid repository: HIT" in plan
        assert "cost model" not in plan

    def test_exact_index_hit_reported(self, engine):
        spec = figure8_spec(("X", "Y"))
        engine.precompute(spec, [base_template(spec.template)])
        plan = explain(engine, spec)
        assert "exact index hit" in plan

    def test_join_chain_reported(self, engine):
        spec = figure8_spec(("X", "Y"))
        engine.precompute(spec, [base_template(spec.template)])
        longer = figure8_spec(("X", "Y", "Y", "X"))
        plan = explain(engine, longer)
        assert "join chain from cached L2" in plan
        assert "2 join+verify step(s)" in plan

    def test_rollup_merge_reported(self, engine):
        spec = figure8_spec(("X", "Y"))
        engine.execute(spec, "ii")
        rolled = ops.p_roll_up(spec, "Y", engine.db.schema)
        plan = explain(engine, rolled)
        assert "P-ROLL-UP merge" in plan

    def test_counting_mode_reflects_predicate(self, engine):
        from repro import Comparison, Literal, MatchingPredicate, PlaceholderField

        plain = explain(engine, figure8_spec(("X", "Y")))
        assert "list lengths" in plain
        predicate = MatchingPredicate(
            ("x1", "y1"),
            Comparison(PlaceholderField("x1", "action"), "=", Literal("in")),
        )
        filtered = explain(engine, figure8_spec(("X", "Y"), predicate=predicate))
        assert "scan each listed sequence" in filtered

    def test_sequence_cache_state(self, engine):
        spec = figure8_spec(("X", "Y"))
        first = explain(engine, spec)
        assert "will run" in first
        second = explain(engine, spec)
        assert "cached" in second

    def test_render_is_indented_text(self, engine):
        plan = explain(engine, figure8_spec(("X", "Y")))
        text = plan.render()
        assert text.splitlines()[0] == "S-OLAP query plan"
        assert any(line.startswith("  ") for line in text.splitlines())
        assert str(plan) == text

    def test_does_not_execute(self, engine):
        spec = figure8_spec(("X", "Y"))
        explain(engine, spec)
        assert spec.cache_key() not in engine.repository
