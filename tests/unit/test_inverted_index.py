"""Unit tests for inverted-index primitives (build, join, merge, refine)."""

import pytest

from repro import build_sequence_groups
from repro.core.spec import PatternSymbol
from repro.core.stats import QueryStats
from repro.errors import IndexError_
from repro.index.inverted import (
    build_index,
    join_indices,
    pair_template,
    prefix_template,
    refine_index,
    union_indices,
    unrestricted_template,
    verify_index,
)
from repro.index.registry import base_template
from tests.conftest import location_template, make_figure8_db


@pytest.fixture
def group():
    db = make_figure8_db()
    groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
    return db, groups.single_group()


class TestTemplateHelpers:
    def test_prefix_template(self):
        template = location_template(("X", "Y", "Y", "X"))
        prefix = prefix_template(template, 3)
        assert prefix.positions == ("X", "Y", "Y")
        assert [s.name for s in prefix.symbols] == ["X", "Y"]

    def test_prefix_drops_unused_symbols(self):
        template = location_template(("X", "Y", "Z"))
        prefix = prefix_template(template, 2)
        assert [s.name for s in prefix.symbols] == ["X", "Y"]

    def test_prefix_bounds(self):
        template = location_template(("X", "Y"))
        with pytest.raises(IndexError_):
            prefix_template(template, 0)
        with pytest.raises(IndexError_):
            prefix_template(template, 3)

    def test_pair_template(self):
        template = location_template(("X", "Y", "Y", "X"))
        pair = pair_template(template, 1)
        assert pair.positions == ("Y", "Y")
        assert len(pair.symbols) == 1
        pair2 = pair_template(template, 2)
        assert pair2.positions == ("Y", "X")

    def test_pair_bounds(self):
        template = location_template(("X", "Y"))
        with pytest.raises(IndexError_):
            pair_template(template, 1)

    def test_unrestricted_template_strips_restrictions(self):
        template = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Pentagon")
        )
        assert not unrestricted_template(template).has_restricted_symbols

    def test_base_template_signature_covers_any_names(self):
        a = base_template(location_template(("X", "Y")))
        b = base_template(location_template(("P", "Q")))
        assert a.signature() == b.signature()


class TestBuildIndex:
    def test_counts_and_stats(self, group):
        db, grp = group
        stats = QueryStats()
        index = build_index(grp, location_template(("X", "Y")), db.schema, stats)
        assert stats.sequences_scanned == 4
        assert stats.indices_built == 1
        assert stats.index_bytes_built == index.size_bytes() > 0
        assert index.verified
        assert len(index) == 9  # Figure 10's L2 has nine non-empty lists

    def test_restricted_build_scans_only_candidates(self, group):
        db, grp = group
        stats = QueryStats()
        sids = [seq.sid for seq in grp][:2]
        index = build_index(
            grp,
            location_template(("X", "Y")),
            db.schema,
            stats,
            restrict_sids=sids,
        )
        assert stats.sequences_scanned == 2
        assert index.all_sids() <= set(sids)

    def test_restricted_template_build(self, group):
        db, grp = group
        template = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Wheaton")
        )
        index = build_index(grp, template, db.schema)
        assert all(key[0] == "Wheaton" for key in index.lists)

    def test_size_accessors(self, group):
        db, grp = group
        index = build_index(grp, location_template(("X", "Y")), db.schema)
        assert index.num_entries() >= len(index)
        assert len(index.all_sids()) == 4
        assert ("Pentagon", "Wheaton") in index
        assert len(index.get(("No", "Where"))) == 0


class TestFilterFor:
    def test_shape_mismatch_raises(self, group):
        db, grp = group
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        with pytest.raises(IndexError_):
            base.filter_for(location_template(("X", "Y", "Z")), db.schema)

    def test_domain_mismatch_raises(self, group):
        db, grp = group
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        district = location_template(("X", "Y")).replace_symbol(
            "Y", PatternSymbol("Y", "location", "district")
        )
        with pytest.raises(IndexError_):
            base.filter_for(district, db.schema)

    def test_fixed_filter(self, group):
        db, grp = group
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        fixed = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Pentagon")
        )
        filtered = base.filter_for(fixed, db.schema)
        assert set(filtered.lists) == {
            ("Pentagon", "Pentagon"),
            ("Pentagon", "Wheaton"),
        }


class TestJoinAndVerify:
    def test_join_requires_size2_right(self, group):
        db, grp = group
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        l3 = build_index(grp, location_template(("X", "Y", "Z")), db.schema)
        with pytest.raises(IndexError_):
            join_indices(base, l3, location_template(("X", "Y", "Z")), db.schema)

    def test_join_prefix_length_checked(self, group):
        db, grp = group
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        with pytest.raises(IndexError_):
            join_indices(base, base, location_template(("X", "Y")), db.schema)

    def test_join_result_unverified_and_superset(self, group):
        db, grp = group
        target = location_template(("X", "Y", "Z"))
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        candidate = join_indices(base, base, target, db.schema)
        assert not candidate.verified
        truth = build_index(grp, target, db.schema)
        for values, sids in truth.lists.items():
            assert set(sids) <= set(candidate.get(values))

    def test_verify_equals_direct_build(self, group):
        db, grp = group
        target = location_template(("X", "Y", "Z"))
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        candidate = join_indices(base, base, target, db.schema)
        verified = verify_index(candidate, grp, db.schema)
        truth = build_index(grp, target, db.schema)
        assert {k: set(v) for k, v in verified.lists.items()} == {
            k: set(v) for k, v in truth.lists.items() if v
        }

    def test_verify_on_verified_is_noop(self, group):
        db, grp = group
        index = build_index(grp, location_template(("X", "Y")), db.schema)
        assert verify_index(index, grp, db.schema) is index

    def test_join_stats(self, group):
        db, grp = group
        stats = QueryStats()
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        join_indices(
            base, base, location_template(("X", "Y", "Z")), db.schema, stats
        )
        assert stats.index_joins == 1


class TestRollupAndRefine:
    def test_rollup_merges_lists(self, group):
        db, grp = group
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        district_template = location_template(("X", "Y")).replace_symbol(
            "Y", PatternSymbol("Y", "location", "district")
        )
        rolled = base.rollup(
            (("location", "station"), ("location", "district")),
            db.schema,
            district_template,
        )
        assert set(rolled.get(("Wheaton", "D10"))) == {
            s for s in base.get(("Wheaton", "Pentagon"))
        } | {s for s in base.get(("Wheaton", "Clarendon"))}

    def test_rollup_length_mismatch(self, group):
        db, grp = group
        base = build_index(grp, location_template(("X", "Y")), db.schema)
        with pytest.raises(IndexError_):
            base.rollup((("location", "district"),), db.schema, base.template)

    def test_refine_equals_direct_build(self, group):
        db, grp = group
        district = location_template(("X", "Y")).replace_symbol(
            "X", PatternSymbol("X", "location", "district")
        ).replace_symbol("Y", PatternSymbol("Y", "location", "district"))
        coarse = build_index(grp, district, db.schema)
        fine_template = location_template(("X", "Y"))
        stats = QueryStats()
        refined = refine_index(coarse, fine_template, grp, db.schema, stats)
        truth = build_index(grp, fine_template, db.schema)
        assert {k: set(v) for k, v in refined.lists.items()} == {
            k: set(v) for k, v in truth.lists.items()
        }
        assert stats.sequences_scanned == 4


class TestUnion:
    def test_union_of_split_groups_equals_whole(self, group):
        db, grp = group
        template = location_template(("X", "Y"))
        whole = build_index(grp, template, db.schema)
        first = build_index(
            grp, template, db.schema, restrict_sids=[s.sid for s in grp][:2]
        )
        second = build_index(
            grp, template, db.schema, restrict_sids=[s.sid for s in grp][2:]
        )
        union = union_indices([first, second], template)
        assert {k: set(v) for k, v in union.lists.items()} == {
            k: set(v) for k, v in whole.lists.items()
        }

    def test_union_template_mismatch_raises(self, group):
        db, grp = group
        a = build_index(grp, location_template(("X", "Y")), db.schema)
        b = build_index(grp, location_template(("X", "X")), db.schema)
        with pytest.raises(IndexError_):
            union_indices([a, b], a.template)


class TestPostingLists:
    def test_posting_list_canonicalises(self):
        from array import array

        from repro.index.inverted import posting_list

        assert list(posting_list({5, 1, 3, 1})) == [1, 3, 5]
        assert list(posting_list([4, 2, 2])) == [2, 4]
        existing = array("I", [1, 2])
        assert posting_list(existing) is existing

    def test_intersect_postings_basic(self):
        from array import array

        from repro.index.inverted import intersect_postings

        a = array("I", [1, 3, 5, 7, 9])
        b = array("I", [2, 3, 4, 7, 8, 100])
        assert list(intersect_postings(a, b)) == [3, 7]
        assert list(intersect_postings(b, a)) == [3, 7]

    def test_intersect_postings_disjoint_and_empty(self):
        from array import array

        from repro.index.inverted import intersect_postings

        a = array("I", [1, 2, 3])
        b = array("I", [10, 20])
        assert list(intersect_postings(a, b)) == []
        assert list(intersect_postings(a, array("I"))) == []
        assert list(intersect_postings(array("I"), b)) == []

    def test_intersect_postings_matches_set_semantics(self):
        import random
        from array import array

        from repro.index.inverted import intersect_postings

        rng = random.Random(42)
        for __ in range(50):
            xs = sorted(rng.sample(range(500), rng.randint(0, 60)))
            ys = sorted(rng.sample(range(500), rng.randint(0, 60)))
            expected = sorted(set(xs) & set(ys))
            got = list(intersect_postings(array("I", xs), array("I", ys)))
            assert got == expected

    def test_intersect_skewed_lists(self):
        from array import array

        from repro.index.inverted import intersect_postings

        long = array("I", range(0, 100_000, 3))
        short = array("I", [3, 29_998, 30_000, 99_999])
        assert list(intersect_postings(short, long)) == [3, 30_000, 99_999]


class TestJoinKernels:
    def test_both_kernels_agree(self, group):
        db, grp = group
        left = build_index(grp, location_template(("X", "Y")), db.schema)
        right = build_index(grp, location_template(("Y", "Z")), db.schema)
        target = prefix_template(location_template(("X", "Y", "Z")), 3)
        sorted_join = join_indices(left, right, target, db.schema, kernel="sorted")
        bitmap_join = join_indices(left, right, target, db.schema, kernel="bitmap")
        assert {k: list(v) for k, v in sorted_join.lists.items()} == {
            k: list(v) for k, v in bitmap_join.lists.items()
        }

    def test_auto_kernel_recorded_in_stats(self, group):
        db, grp = group
        left = build_index(grp, location_template(("X", "Y")), db.schema)
        right = build_index(grp, location_template(("Y", "Z")), db.schema)
        target = prefix_template(location_template(("X", "Y", "Z")), 3)
        stats = QueryStats()
        join_indices(left, right, target, db.schema, stats=stats)
        assert stats.extra["join_kernel"] in ("sorted", "bitmap")
        assert stats.index_joins == 1

    def test_choose_join_kernel_rule(self):
        from repro.optimizer.cost_model import choose_join_kernel

        # dense lists within the span -> bitmap
        assert choose_join_kernel(avg_list_len=100.0, sid_span=1000) == "bitmap"
        # sparse -> sorted galloping
        assert choose_join_kernel(avg_list_len=2.0, sid_span=1_000_000) == "sorted"
        # degenerate inputs -> sorted
        assert choose_join_kernel(0.0, 100) == "sorted"
        assert choose_join_kernel(5.0, 0) == "sorted"
