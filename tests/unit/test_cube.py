"""Unit tests for the S-cube lattice and non-summarizability."""

from repro import SCube, detail_summarization_counterexample, spec_coarser_or_equal
from repro.core.cube import (
    iter_templates,
    template_coarser_or_equal,
)
from repro.core.spec import PatternKind, PatternSymbol
from tests.conftest import figure8_spec, location_template, make_transit_schema


class TestPartialOrder:
    def test_reflexive(self):
        schema = make_transit_schema()
        spec = figure8_spec(("X", "Y"))
        assert spec_coarser_or_equal(schema, spec, spec)

    def test_shorter_template_is_coarser(self):
        schema = make_transit_schema()
        short = figure8_spec(("X", "Y"))
        long = figure8_spec(("X", "Y", "Z"))
        assert spec_coarser_or_equal(schema, short, long)
        assert not spec_coarser_or_equal(schema, long, short)

    def test_higher_level_is_coarser(self):
        schema = make_transit_schema()
        fine = location_template(("X", "Y"))
        coarse = fine.replace_symbol(
            "Y", PatternSymbol("Y", "location", "district")
        )
        assert template_coarser_or_equal(schema, coarse, fine)
        assert not template_coarser_or_equal(schema, fine, coarse)

    def test_window_matching_respects_symbol_structure(self):
        schema = make_transit_schema()
        xyyx = location_template(("X", "Y", "Y", "X"))
        yy = location_template(("Y", "Y"))
        xy = location_template(("X", "Y"))
        # (Y, Y) matches the middle window of (X, Y, Y, X).
        assert template_coarser_or_equal(schema, yy, xyyx)
        # (X, Y) with distinct symbols matches the (X, Y) window.
        assert template_coarser_or_equal(schema, xy, xyyx)

    def test_mismatched_shape_not_coarser(self):
        schema = make_transit_schema()
        xx = location_template(("X", "X"))
        xy = location_template(("X", "Y"))
        assert not template_coarser_or_equal(schema, xx, xy)

    def test_fewer_global_dims_is_coarser(self):
        schema = make_transit_schema()
        grouped = figure8_spec(("X", "Y"), group_by=(("location", "district"),))
        ungrouped = figure8_spec(("X", "Y"))
        assert spec_coarser_or_equal(schema, ungrouped, grouped)
        assert not spec_coarser_or_equal(schema, grouped, ungrouped)

    def test_different_pipelines_incomparable(self):
        schema = make_transit_schema()
        a = figure8_spec(("X", "Y"))
        b = figure8_spec(("X", "Y"))
        from dataclasses import replace

        b = replace(b, sequence_by=(("time", False),))
        assert not spec_coarser_or_equal(schema, a, b)


class TestTemplateEnumeration:
    def test_bounded_enumeration_counts(self):
        domains = [("location", "station")]
        templates = list(
            iter_templates(PatternKind.SUBSTRING, domains, max_length=2)
        )
        # length 1: 1 shape; length 2: shapes (0,0) and (0,1) -> 3 total.
        assert len(templates) == 3

    def test_unbounded_generator_is_infinite_in_spirit(self):
        domains = [("location", "station")]
        generator = iter_templates(PatternKind.SUBSTRING, domains, max_length=None)
        lengths = set()
        for __ in range(40):
            lengths.add(next(generator).length)
        assert max(lengths) >= 4  # keeps growing past any fixed bound

    def test_two_domains_assignments(self):
        domains = [("location", "station"), ("location", "district")]
        templates = [
            t
            for t in iter_templates(PatternKind.SUBSTRING, domains, max_length=1)
        ]
        assert len(templates) == 2


class TestSCube:
    def test_fragment_enumeration_and_lattice(self):
        schema = make_transit_schema()
        prototype = figure8_spec(("X", "Y"))
        cube = SCube(
            schema,
            prototype,
            pattern_domains=[("location", "station")],
            max_template_length=2,
        )
        specs = cube.cuboids()
        assert len(specs) == 3
        graph = cube.lattice()
        assert graph.number_of_nodes() == 3
        # (X) is coarser than both length-2 templates.
        assert graph.number_of_edges() == 2

    def test_lattice_with_global_dims(self):
        schema = make_transit_schema()
        prototype = figure8_spec(
            ("X", "Y"), group_by=(("location", "district"),)
        )
        cube = SCube(
            schema,
            prototype,
            pattern_domains=[("location", "station")],
            max_template_length=1,
            global_level_choices={"location": ("station", "district")},
        )
        # one template x (dropped / station / district) global choices
        assert len(cube.cuboids()) == 3


class TestNonSummarizability:
    def test_counterexample_numbers(self):
        result = detail_summarization_counterexample()
        assert result["c1"] == 1
        assert result["c2"] == 1
        assert result["c3"] == 1
        assert result["true_c4"] == 1
        assert result["aggregated_c4"] == 2
        assert result["aggregated_c4"] != result["true_c4"]
