"""Unit tests for the cost model and the index advisor."""

import pytest

from repro import SOLAPEngine
from repro.core import operations as ops
from repro.datagen import SyntheticConfig, generate_event_database
from repro.datagen.synthetic import base_spec
from repro.index.registry import base_template
from repro.optimizer import (
    CostModel,
    DataProfile,
    IndexAdvisor,
    advise_for_workload,
    profile_groups,
)


@pytest.fixture(scope="module")
def db():
    return generate_event_database(SyntheticConfig(D=200, L=12, seed=81))


@pytest.fixture(scope="module")
def profile(db):
    engine = SOLAPEngine(db)
    groups = engine.sequence_groups(base_spec(("X", "Y")))
    return profile_groups(db, groups, (("symbol", "symbol"), ("symbol", "group")))


class TestProfile:
    def test_counts(self, profile):
        assert profile.n_sequences == 200
        assert 9 < profile.avg_length < 15
        assert profile.n_groups == 1

    def test_domain_sizes(self, profile):
        assert profile.domain_size("symbol", "symbol") <= 100
        assert profile.domain_size("symbol", "group") <= 20
        assert profile.domain_size("symbol", "missing-level") == 1


class TestCostModel:
    def test_cb_cost_scales_with_sequences(self):
        small = CostModel(DataProfile(100, 10.0, 1))
        large = CostModel(DataProfile(1000, 10.0, 1))
        spec = base_spec(("X", "Y"))
        assert (
            large.cost_cb(spec).scan_equivalents
            > small.cost_cb(spec).scan_equivalents
        )

    def test_cold_two_step_prefers_cb(self, db, profile):
        """Table 1's Qa: without indices, CB wins the first query."""
        model = CostModel(profile)
        choice, cb, ii = model.choose(
            base_spec(("X", "Y")), None, (), db.schema
        )
        assert choice == "cb"
        assert ii.scan_equivalents > cb.scan_equivalents

    def test_exact_hit_prefers_ii(self, db, profile):
        engine = SOLAPEngine(db)
        spec = base_spec(("X", "Y"))
        engine.precompute(spec, [base_template(spec.template)])
        model = CostModel(profile)
        choice, cb, ii = model.choose(spec, engine.registry, (), db.schema)
        assert choice == "ii"
        assert ii.scan_equivalents == 0.0

    def test_sliced_template_cheaper_than_free(self, profile):
        model = CostModel(profile)
        free = base_spec(("X", "Y"))
        sliced = ops.slice_pattern(free, "X", "e000")
        assert model.expected_matching_sequences(
            sliced.template
        ) < model.expected_matching_sequences(free.template)

    def test_repeated_symbols_more_selective(self, profile):
        model = CostModel(profile)
        xy = base_spec(("X", "Y")).template
        xx = base_spec(("X", "X")).template
        assert model.expected_matching_sequences(
            xx
        ) < model.expected_matching_sequences(xy)

    def test_estimates_bounded_by_population(self, profile):
        model = CostModel(profile)
        for positions in [("X",), ("X", "Y"), ("X", "Y", "Z")]:
            estimate = model.expected_matching_sequences(
                base_spec(positions).template
            )
            assert 0 <= estimate <= profile.n_sequences


class TestEngineCostStrategy:
    def test_cost_strategy_runs_and_records(self, db):
        engine = SOLAPEngine(db, use_repository=False)
        spec = base_spec(("X", "Y"))
        cuboid, stats = engine.execute(spec, "cost")
        assert stats.strategy in ("CB", "II")
        assert "cost_cb" in stats.extra and "cost_ii" in stats.extra
        # results match a plain CB run regardless of the choice
        truth, __ = SOLAPEngine(db).execute(spec, "cb")
        assert cuboid.to_dict() == truth.to_dict()

    def test_cost_strategy_switches_after_precompute(self, db):
        engine = SOLAPEngine(db, use_repository=False)
        spec = base_spec(("X", "Y"))
        __, cold = engine.execute(spec, "cost")
        engine.precompute(spec, [base_template(spec.template)])
        __, warm = engine.execute(spec, "cost")
        assert cold.strategy == "CB"
        assert warm.strategy == "II"


class TestAdvisor:
    def test_candidates_deduplicate_domains(self, profile):
        advisor = IndexAdvisor(profile)
        workload = [
            base_spec(("X", "Y")),
            base_spec(("X", "Y", "Z")),
            base_spec(("X", "Y", "Y", "X")),
        ]
        candidates = advisor.candidate_templates(workload)
        # All position pairs share the symbol@symbol domain: one candidate.
        assert len(candidates) == 1

    def test_mixed_level_candidates(self, profile):
        advisor = IndexAdvisor(profile)
        workload = [
            base_spec(("X", "Y")),
            base_spec(("X", "Y"), level="group"),
        ]
        assert len(advisor.candidate_templates(workload)) == 2

    def test_recommendation_for_workload(self, db):
        engine = SOLAPEngine(db)
        workload = [base_spec(("X", "Y")), base_spec(("X", "Y", "Z"))]
        recommendations = advise_for_workload(engine, workload)
        assert len(recommendations) == 1
        rec = recommendations[0]
        assert rec.template.length == 2
        assert rec.benefit > 0
        assert rec.estimated_bytes > 0

    def test_budget_respected(self, db):
        engine = SOLAPEngine(db)
        workload = [base_spec(("X", "Y"))]
        assert advise_for_workload(engine, workload, byte_budget=10) == []

    def test_empty_workload(self, db):
        assert advise_for_workload(SOLAPEngine(db), []) == []

    def test_materialized_recommendation_speeds_up_queries(self, db):
        engine = SOLAPEngine(db, use_repository=False)
        workload = [base_spec(("X", "Y")), base_spec(("X", "Y", "Z"))]
        recommendations = advise_for_workload(engine, workload)
        IndexAdvisor.materialize(engine, recommendations, workload[0])
        __, stats = engine.execute(workload[0], "ii")
        assert stats.sequences_scanned == 0  # served from the advised index
