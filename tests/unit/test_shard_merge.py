"""Partial S-cuboid merge algebra: transport rewrite, folds, fallback."""

from types import SimpleNamespace

import pytest

from repro.core.spec import AggregateSpec, CuboidSpec, PatternKind, PatternTemplate
from repro.errors import EngineError, NotMergeableError
from repro.shard.merge import (
    check_mergeable,
    finalize_transport,
    merge_partial_cells,
    transport_spec,
)


def _spec(*aggregates):
    template = PatternTemplate.build(
        PatternKind.SUBSEQUENCE,
        ("X", "Y"),
        {"X": ("symbol", "symbol"), "Y": ("symbol", "symbol")},
    )
    return CuboidSpec(
        template=template,
        cluster_by=(("seq", "seq"),),
        sequence_by=(("ts", True),),
        aggregates=aggregates or (AggregateSpec("COUNT", None),),
    )


CELL = (("g",), ("a", "b"))
OTHER = (("g",), ("a", "c"))


class TestTransportSpec:
    def test_no_avg_passes_through_unchanged(self):
        spec = _spec(AggregateSpec("COUNT", None), AggregateSpec("SUM", "m"))
        transport, restore = transport_spec(spec)
        assert transport is spec
        assert restore == {}

    def test_avg_becomes_avgpair(self):
        spec = _spec(AggregateSpec("AVG", "m"), AggregateSpec("MAX", "m"))
        transport, restore = transport_spec(spec)
        funcs = [aggregate.func for aggregate in transport.aggregates]
        assert funcs == ["AVGPAIR", "MAX"]
        assert restore == {"AVGPAIR(m)": "AVG(m)"}
        # the original spec is untouched
        assert [a.func for a in spec.aggregates] == ["AVG", "MAX"]

    def test_holistic_aggregate_raises_typed_error(self):
        fake = SimpleNamespace(func="MEDIAN", name="MEDIAN(m)")
        spec = _spec()
        broken = SimpleNamespace(aggregates=(fake,))
        with pytest.raises(NotMergeableError) as excinfo:
            check_mergeable(broken)
        assert excinfo.value.aggregate == "MEDIAN(m)"
        assert isinstance(excinfo.value, EngineError)
        assert "MEDIAN(m)" in str(excinfo.value)
        del spec


class TestMergePartialCells:
    def test_disjoint_cells_pass_through(self):
        spec = _spec(AggregateSpec("COUNT", None))
        merged = merge_partial_cells(
            spec,
            [{CELL: {"COUNT(*)": 2}}, {OTHER: {"COUNT(*)": 5}}],
        )
        assert merged == {CELL: {"COUNT(*)": 2}, OTHER: {"COUNT(*)": 5}}

    def test_overlapping_cells_fold_per_aggregate(self):
        spec = _spec(
            AggregateSpec("COUNT", None),
            AggregateSpec("SUM", "m"),
            AggregateSpec("MIN", "m"),
            AggregateSpec("MAX", "m"),
        )
        merged = merge_partial_cells(
            spec,
            [
                {CELL: {"COUNT(*)": 2, "SUM(m)": 10, "MIN(m)": 3, "MAX(m)": 7}},
                {CELL: {"COUNT(*)": 1, "SUM(m)": 4, "MIN(m)": 1, "MAX(m)": 5}},
            ],
        )
        assert merged[CELL] == {
            "COUNT(*)": 3,
            "SUM(m)": 14,
            "MIN(m)": 1,
            "MAX(m)": 7,
        }

    def test_none_values_are_identity(self):
        # MIN/MAX over a shard with no measure values yields None; merging
        # must treat it as "no contribution", matching the serial scan.
        spec = _spec(AggregateSpec("MIN", "m"), AggregateSpec("MAX", "m"))
        merged = merge_partial_cells(
            spec,
            [
                {CELL: {"MIN(m)": None, "MAX(m)": None}},
                {CELL: {"MIN(m)": 4, "MAX(m)": 9}},
                {CELL: {"MIN(m)": None, "MAX(m)": None}},
            ],
        )
        assert merged[CELL] == {"MIN(m)": 4, "MAX(m)": 9}

    def test_merge_does_not_mutate_partials(self):
        spec = _spec(AggregateSpec("COUNT", None))
        first = {CELL: {"COUNT(*)": 2}}
        second = {CELL: {"COUNT(*)": 3}}
        merge_partial_cells(spec, [first, second])
        assert first == {CELL: {"COUNT(*)": 2}}
        assert second == {CELL: {"COUNT(*)": 3}}

    def test_avgpair_sums_pairwise(self):
        spec = _spec(AggregateSpec("AVG", "m"))
        transport, restore = transport_spec(spec)
        merged = merge_partial_cells(
            transport,
            [
                {CELL: {"AVGPAIR(m)": (10, 2)}},
                {CELL: {"AVGPAIR(m)": (5, 3)}},
            ],
        )
        assert merged[CELL] == {"AVGPAIR(m)": (15, 5)}
        assert finalize_transport(merged, restore) == {CELL: {"AVG(m)": 3.0}}

    def test_empty_partials(self):
        spec = _spec()
        assert merge_partial_cells(spec, []) == {}
        assert merge_partial_cells(spec, [{}, {}]) == {}


class TestFinalizeTransport:
    def test_passthrough_without_restore_map(self):
        cells = {CELL: {"COUNT(*)": 7}}
        assert finalize_transport(cells, {}) is cells

    def test_zero_count_pair_finalizes_to_none(self):
        merged = {CELL: {"AVGPAIR(m)": (0, 0)}}
        out = finalize_transport(merged, {"AVGPAIR(m)": "AVG(m)"})
        assert out == {CELL: {"AVG(m)": None}}

    def test_non_avg_aggregates_survive_alongside(self):
        merged = {CELL: {"AVGPAIR(m)": (9, 3), "COUNT(*)": 3}}
        out = finalize_transport(merged, {"AVGPAIR(m)": "AVG(m)"})
        assert out == {CELL: {"AVG(m)": 3.0, "COUNT(*)": 3}}
