"""Unit tests for query statistics and the error hierarchy."""

import pytest

from repro import (
    EngineError,
    ExpressionError,
    OperationError,
    QueryLanguageError,
    QueryStats,
    SOLAPError,
    SchemaError,
    SpecError,
)
from repro.errors import IndexError_


class TestQueryStats:
    def test_add_scan(self):
        stats = QueryStats()
        stats.add_scan()
        stats.add_scan(4)
        assert stats.sequences_scanned == 5

    def test_merge_is_additive(self):
        a = QueryStats(runtime_seconds=1.0, sequences_scanned=10, index_joins=1)
        b = QueryStats(runtime_seconds=0.5, sequences_scanned=3, index_joins=2)
        a.merge(b)
        assert a.runtime_seconds == 1.5
        assert a.sequences_scanned == 13
        assert a.index_joins == 3

    def test_summary_format(self):
        stats = QueryStats(
            strategy="II", runtime_seconds=0.0123, sequences_scanned=42
        )
        text = stats.summary()
        assert "II" in text and "42 sequences" in text and "12.30 ms" in text

    def test_extra_dict_independent(self):
        a = QueryStats()
        b = QueryStats()
        a.extra["k"] = 1
        assert "k" not in b.extra


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [
            SchemaError,
            SpecError,
            ExpressionError,
            QueryLanguageError,
            OperationError,
            IndexError_,
            EngineError,
        ],
    )
    def test_all_derive_from_solap_error(self, error_class):
        assert issubclass(error_class, SOLAPError)

    def test_query_language_error_position(self):
        error = QueryLanguageError("bad token", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_query_language_error_without_position(self):
        error = QueryLanguageError("oops")
        assert str(error) == "oops"

    def test_catching_base_class(self):
        with pytest.raises(SOLAPError):
            raise SpecError("nope")
