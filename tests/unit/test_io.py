"""Unit tests for persistence (schemas, events, indices, cuboids)."""

import pytest

from repro import Dimension, Hierarchy, Schema, SchemaError, SOLAPEngine
from repro.index.inverted import build_index
from repro.io import (
    load_cuboid,
    load_dataset,
    load_index,
    load_schema,
    read_events_csv,
    read_events_jsonl,
    save_cuboid,
    save_dataset,
    save_index,
    save_schema,
    schema_from_dict,
    schema_to_dict,
    write_events_csv,
    write_events_jsonl,
)
from tests.conftest import figure8_spec, location_template, make_figure8_db


class TestSchemaIO:
    def test_roundtrip(self, tmp_path):
        db = make_figure8_db()
        path = tmp_path / "schema.json"
        save_schema(db.schema, path)
        loaded = load_schema(path)
        assert loaded.attributes == db.schema.attributes
        assert loaded.hierarchy("location").levels == ("station", "district")
        assert loaded.map_value("location", "Pentagon", "district") == "D10"

    def test_callable_mapping_rejected(self):
        schema = Schema(
            [
                Dimension(
                    "time",
                    Hierarchy("time", ("minute", "day"), {"day": lambda m: m // 1440}),
                )
            ]
        )
        with pytest.raises(SchemaError):
            schema_to_dict(schema)

    def test_dict_roundtrip_preserves_measures(self):
        db = make_figure8_db()
        data = schema_to_dict(db.schema)
        rebuilt = schema_from_dict(data)
        assert list(rebuilt.measures) == ["amount"]


class TestEventIO:
    def test_jsonl_roundtrip(self, tmp_path):
        db = make_figure8_db()
        path = tmp_path / "events.jsonl"
        written = write_events_jsonl(db, path)
        assert written == len(db)
        loaded = read_events_jsonl(db.schema, path)
        assert len(loaded) == len(db)
        assert loaded.column("location") == db.column("location")
        assert loaded.column("amount") == db.column("amount")

    def test_csv_roundtrip_with_types(self, tmp_path):
        db = make_figure8_db()
        path = tmp_path / "events.csv"
        write_events_csv(db, path)
        loaded = read_events_csv(
            db.schema,
            path,
            types={"time": "int", "card": "int", "amount": "float"},
        )
        assert loaded.column("time") == db.column("time")
        assert loaded.column("card") == db.column("card")
        assert loaded.column("amount") == db.column("amount")

    def test_csv_untyped_columns_are_strings(self, tmp_path):
        db = make_figure8_db()
        path = tmp_path / "events.csv"
        write_events_csv(db, path)
        loaded = read_events_csv(db.schema, path)
        assert loaded.column("time")[0] == "0"

    def test_csv_unknown_column_rejected(self, tmp_path):
        db = make_figure8_db()
        path = tmp_path / "bad.csv"
        path.write_text("ghost,location\n1,Pentagon\n")
        with pytest.raises(SchemaError):
            read_events_csv(db.schema, path)

    def test_empty_csv(self, tmp_path):
        db = make_figure8_db()
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert len(read_events_csv(db.schema, path)) == 0

    def test_dataset_directory_roundtrip(self, tmp_path):
        db = make_figure8_db()
        directory = save_dataset(db, tmp_path / "data")
        assert (directory / "schema.json").exists()
        assert (directory / "events.jsonl").exists()
        loaded = load_dataset(directory)
        assert len(loaded) == len(db)
        # queries over the loaded dataset match the original
        spec = figure8_spec(("X", "Y"))
        a, __ = SOLAPEngine(db).execute(spec, "cb")
        b, __ = SOLAPEngine(loaded).execute(spec, "cb")
        assert a.to_dict() == b.to_dict()


class TestIndexIO:
    def test_index_roundtrip(self, tmp_path):
        db = make_figure8_db()
        groups = SOLAPEngine(db).sequence_groups(figure8_spec(("X", "Y")))
        index = build_index(
            groups.single_group(), location_template(("X", "Y")), db.schema
        )
        path = tmp_path / "l2.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.verified == index.verified
        assert loaded.template.signature() == index.template.signature()
        assert {k: set(v) for k, v in loaded.lists.items()} == {
            k: set(v) for k, v in index.lists.items()
        }

    def test_restricted_template_roundtrip(self, tmp_path):
        from repro.core.spec import PatternSymbol

        db = make_figure8_db()
        groups = SOLAPEngine(db).sequence_groups(figure8_spec(("X", "Y")))
        template = location_template(("X", "Y")).replace_symbol(
            "X",
            PatternSymbol("X", "location", "station", within=("district", "D10")),
        )
        index = build_index(groups.single_group(), template, db.schema)
        path = tmp_path / "restricted.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.template.symbol("X").within == ("district", "D10")


class TestCuboidIO:
    def test_cuboid_roundtrip(self, tmp_path):
        db = make_figure8_db()
        cuboid, __ = SOLAPEngine(db).execute(figure8_spec(("X", "Y")), "cb")
        path = tmp_path / "cuboid.json"
        save_cuboid(cuboid, path)
        loaded = load_cuboid(path, db.schema)
        assert loaded.spec == cuboid.spec
        assert loaded.to_dict() == cuboid.to_dict()

    def test_grouped_cuboid_roundtrip(self, tmp_path):
        db = make_figure8_db()
        spec = figure8_spec(("X", "Y"), group_by=(("location", "district"),))
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        path = tmp_path / "grouped.json"
        save_cuboid(cuboid, path)
        loaded = load_cuboid(path, db.schema)
        assert loaded.to_dict() == cuboid.to_dict()

    def test_sliced_cuboid_roundtrip(self, tmp_path):
        from repro.core import operations as ops

        db = make_figure8_db()
        spec = ops.slice_global(
            figure8_spec(("X", "Y"), group_by=(("location", "district"),)),
            "location",
            "D10",
        )
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        path = tmp_path / "sliced.json"
        save_cuboid(cuboid, path)
        loaded = load_cuboid(path, db.schema)
        assert loaded.spec.global_slice == ((0, "D10"),)
        assert loaded.to_dict() == cuboid.to_dict()
