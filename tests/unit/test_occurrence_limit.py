"""Unit tests for the per-sequence occurrence enumeration cap."""

import pytest

from repro import SOLAPEngine, build_sequence_groups
from repro.core.matcher import (
    TemplateMatcher,
    occurrence_limit,
    set_default_occurrence_limit,
)
from repro.errors import MatchLimitExceeded
from tests.property.conftest import make_db
from tests.conftest import figure8_spec, location_template, make_figure8_db


@pytest.fixture(autouse=True)
def reset_limit():
    yield
    set_default_occurrence_limit(None)


def pathological_db():
    """One all-identical sequence: subsequence (X, Y) has C(20, 2) = 190
    occurrences."""
    return make_db([["a"] * 20])


def subsequence_matcher(db, cap=None):
    from repro.core.spec import PatternKind
    from tests.property.conftest import template_from

    template = template_from((0, 1), PatternKind.SUBSEQUENCE)
    return TemplateMatcher(template, db.schema, occurrence_cap=cap)


def the_sequence(db):
    groups = build_sequence_groups(db, None, [("seq", "seq")], [("ts", True)])
    return next(iter(groups.all_sequences()))


class TestExplicitCap:
    def test_under_cap_enumerates_fully(self):
        db = pathological_db()
        matcher = subsequence_matcher(db, cap=200)
        assert len(list(matcher.iter_occurrences(the_sequence(db)))) == 190

    def test_over_cap_raises(self):
        db = pathological_db()
        matcher = subsequence_matcher(db, cap=50)
        with pytest.raises(MatchLimitExceeded) as info:
            list(matcher.iter_occurrences(the_sequence(db)))
        assert "cap of 50" in str(info.value)

    def test_cap_is_per_sequence(self):
        db = make_db([["a"] * 5, ["b"] * 5])
        matcher = subsequence_matcher(db, cap=10)
        groups = build_sequence_groups(db, None, [("seq", "seq")], [("ts", True)])
        total = 0
        for sequence in groups.all_sequences():
            total += len(list(matcher.iter_occurrences(sequence)))
        assert total == 20  # 10 per sequence, neither exceeding the cap


class TestProcessDefault:
    def test_default_applies_without_explicit_cap(self):
        db = pathological_db()
        set_default_occurrence_limit(50)
        matcher = subsequence_matcher(db)
        with pytest.raises(MatchLimitExceeded):
            list(matcher.iter_occurrences(the_sequence(db)))

    def test_explicit_cap_overrides_default(self):
        db = pathological_db()
        set_default_occurrence_limit(50)
        matcher = subsequence_matcher(db, cap=500)
        assert len(list(matcher.iter_occurrences(the_sequence(db)))) == 190

    def test_context_manager_scopes_and_restores(self):
        db = pathological_db()
        matcher = subsequence_matcher(db)
        with occurrence_limit(50):
            with pytest.raises(MatchLimitExceeded):
                list(matcher.iter_occurrences(the_sequence(db)))
        assert len(list(matcher.iter_occurrences(the_sequence(db)))) == 190

    def test_engine_execution_respects_limit(self):
        db = make_figure8_db()
        spec = figure8_spec(("X", "Y"), kind="subsequence")
        with occurrence_limit(2):
            with pytest.raises(MatchLimitExceeded):
                SOLAPEngine(db).execute(spec, "cb")
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        assert len(cuboid) > 0

    def test_substring_templates_also_capped(self):
        db = make_figure8_db()
        matcher = TemplateMatcher(
            location_template(("X", "Y")), db.schema, occurrence_cap=1
        )
        groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
        long_sequence = max(groups.all_sequences(), key=len)
        with pytest.raises(MatchLimitExceeded):
            list(matcher.iter_occurrences(long_sequence))
