"""Unit tests for exploration insights (slice / roll-up / drill suggestions)."""

import pytest

from repro import SCuboid, SOLAPEngine
from repro.core import operations as ops
from repro.datagen import TransitConfig, generate_transit, round_trip_spec
from repro.reports import (
    concentration,
    dimension_cardinalities,
    fragmentation,
    suggest_operations,
)
from tests.conftest import figure8_spec, make_transit_schema


def cuboid_with(cells, spec=None):
    spec = spec or figure8_spec(("X", "Y"))
    return SCuboid(
        spec, {((), cell): {"COUNT(*)": count} for cell, count in cells.items()}
    )


class TestMetrics:
    def test_concentration(self):
        cuboid = cuboid_with({("A", "B"): 8, ("B", "C"): 1, ("C", "D"): 1})
        assert concentration(cuboid) == pytest.approx(0.8)

    def test_concentration_empty(self):
        assert concentration(cuboid_with({})) == 0.0

    def test_fragmentation(self):
        flat = cuboid_with({(f"s{i}", f"t{i}"): 1 for i in range(10)})
        heavy = cuboid_with({("A", "B"): 10})
        assert fragmentation(flat) == pytest.approx(1.0)
        assert fragmentation(heavy) == pytest.approx(0.1)

    def test_dimension_cardinalities(self):
        cuboid = cuboid_with({("A", "B"): 1, ("A", "C"): 1, ("B", "C"): 1})
        assert dimension_cardinalities(cuboid) == {"X": 2, "Y": 2}


class TestSuggestions:
    def test_dominant_cell_suggests_slice(self):
        schema = make_transit_schema()
        cuboid = cuboid_with(
            {("Pentagon", "Wheaton"): 90, ("A", "B"): 5, ("B", "C"): 5}
        )
        insights = suggest_operations(cuboid, schema)
        assert insights
        assert insights[0].operation == "slice_cell"
        assert insights[0].argument == ("Pentagon", "Wheaton")
        assert "90%" in insights[0].reason

    def test_fragmented_cuboid_suggests_rollup(self):
        schema = make_transit_schema()
        cells = {(f"s{i}", f"t{i % 3}"): 1 for i in range(12)}
        insights = suggest_operations(cuboid_with(cells), schema)
        rollups = [i for i in insights if i.operation == "p_roll_up"]
        assert rollups
        # X has the higher cardinality (12 vs 3)
        assert rollups[0].argument == "X"

    def test_restricted_symbols_not_rolled(self):
        schema = make_transit_schema()
        spec = ops.slice_pattern(figure8_spec(("X", "Y")), "X", "Pentagon")
        cells = {("Pentagon", f"t{i}"): 1 for i in range(12)}
        insights = suggest_operations(cuboid_with(cells, spec), schema)
        for insight in insights:
            if insight.operation == "p_roll_up":
                assert insight.argument != "X"

    def test_constant_coarse_dimension_suggests_drill(self):
        schema = make_transit_schema()
        spec = ops.p_roll_up(figure8_spec(("X", "Y")), "Y", schema)
        cells = {("Pentagon", "D10"): 3, ("Wheaton", "D10"): 2}
        insights = suggest_operations(cuboid_with(cells, spec), schema)
        drills = [i for i in insights if i.operation == "p_drill_down"]
        assert drills and drills[0].argument == "Y"

    def test_no_suggestions_on_unremarkable_cuboid(self):
        schema = make_transit_schema()
        cells = {("A", "B"): 10, ("B", "C"): 9, ("C", "D"): 8}
        insights = suggest_operations(
            cuboid_with(cells),
            schema,
            concentration_threshold=0.5,
            fragmentation_threshold=0.5,
        )
        assert insights == []

    def test_max_suggestions_respected(self):
        schema = make_transit_schema()
        cells = {(f"s{i}", f"t{i}"): 1 for i in range(20)}
        cells[("HOT", "CELL")] = 50
        insights = suggest_operations(
            cuboid_with(cells), schema, max_suggestions=1
        )
        assert len(insights) == 1


class TestOnRealExploration:
    def test_transit_q1_suggests_the_papers_move(self):
        """On the running example, the advisor proposes exactly what the
        paper's manager does: slice the Pentagon-Wheaton round-trip cell."""
        db = generate_transit(TransitConfig(n_cards=200, n_days=3, seed=19))
        cuboid, __ = SOLAPEngine(db).execute(
            round_trip_spec(group_by_fare=False), "cb"
        )
        insights = suggest_operations(cuboid, db.schema)
        assert insights
        top = insights[0]
        assert top.operation == "slice_cell"
        assert top.argument == ("Pentagon", "Wheaton")
