"""Unit tests for the index registry."""

import pytest

from repro import IndexRegistry, build_sequence_groups
from repro.core.spec import PatternSymbol
from repro.index.inverted import build_index
from repro.index.registry import base_template
from tests.conftest import location_template, make_figure8_db


@pytest.fixture
def setup():
    db = make_figure8_db()
    groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
    group = groups.single_group()
    registry = IndexRegistry()
    return db, group, registry


class TestPutAndFind:
    def test_exact_hit(self, setup):
        db, group, registry = setup
        template = location_template(("X", "Y"))
        index = build_index(group, template, db.schema)
        registry.put(index)
        assert registry.get_exact(group.key, template) is index
        assert registry.find(group.key, template, db.schema) is index

    def test_miss_returns_none(self, setup):
        db, group, registry = setup
        assert registry.find(group.key, location_template(("X", "Y")), db.schema) is None

    def test_base_fallback_filters(self, setup):
        db, group, registry = setup
        base = build_index(
            group, base_template(location_template(("X", "Y"))), db.schema
        )
        registry.put(base)
        xx = registry.find(group.key, location_template(("X", "X")), db.schema)
        assert xx is not None
        assert all(k[0] == k[1] for k in xx.lists)

    def test_base_fallback_not_registered(self, setup):
        db, group, registry = setup
        base = build_index(
            group, base_template(location_template(("X", "Y"))), db.schema
        )
        registry.put(base)
        registry.find(group.key, location_template(("X", "X")), db.schema)
        assert len(registry) == 1  # the derived filter was not stored

    def test_group_isolation(self, setup):
        db, group, registry = setup
        template = location_template(("X", "Y"))
        registry.put(build_index(group, template, db.schema))
        assert registry.find(("other",), template, db.schema) is None

    def test_replace_same_signature(self, setup):
        db, group, registry = setup
        template = location_template(("X", "Y"))
        registry.put(build_index(group, template, db.schema))
        registry.put(build_index(group, template, db.schema))
        assert len(registry) == 1


class TestLongestPrefix:
    def test_finds_longest(self, setup):
        db, group, registry = setup
        template = location_template(("X", "Y", "Y", "X"))
        registry.put(
            build_index(
                group, base_template(location_template(("X", "Y"))), db.schema
            )
        )
        from repro.index.inverted import prefix_template

        registry.put(build_index(group, prefix_template(template, 3), db.schema))
        hit = registry.longest_prefix(group.key, template, db.schema)
        assert hit is not None
        length, index = hit
        assert length == 3

    def test_none_when_empty(self, setup):
        db, group, registry = setup
        assert (
            registry.longest_prefix(
                group.key, location_template(("X", "Y")), db.schema
            )
            is None
        )

    def test_fixed_symbol_prefix_served_by_base(self, setup):
        db, group, registry = setup
        registry.put(
            build_index(
                group, base_template(location_template(("X", "Y"))), db.schema
            )
        )
        sliced = location_template(("X", "Y", "Z")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Pentagon")
        )
        hit = registry.longest_prefix(group.key, sliced, db.schema)
        assert hit is not None and hit[0] == 2
        assert all(k[0] == "Pentagon" for k in hit[1].lists)


class TestRegistryViewAcrossPipelines:
    """RegistryView aggregates the per-pipeline registries of the engine."""

    @pytest.fixture
    def view_setup(self):
        from repro.core.engine import RegistryView
        from repro.index.inverted import prefix_template

        db = make_figure8_db()
        groups = build_sequence_groups(
            db, None, [("card", "card")], [("time", True)]
        )
        group = groups.single_group()
        template = location_template(("X", "Y", "Y", "X"))
        # Two pipelines: one holds the length-2 XY base index, the other
        # the length-3 prefix index of XYYX.
        first = IndexRegistry()
        first.put(
            build_index(
                group, base_template(location_template(("X", "Y"))), db.schema
            )
        )
        second = IndexRegistry()
        second.put(build_index(group, prefix_template(template, 3), db.schema))
        registries = {"pipe-1": first, "pipe-2": second}
        return db, group, template, registries, RegistryView(registries)

    def test_len_and_bytes_aggregate(self, view_setup):
        __, __, __, registries, view = view_setup
        assert len(view) == 2
        assert view.total_bytes() == sum(
            r.total_bytes() for r in registries.values()
        )

    def test_find_searches_every_pipeline(self, view_setup):
        db, group, template, registries, view = view_setup
        # The XY base index lives only in pipe-1; find must still see it.
        assert (
            view.find(group.key, location_template(("X", "Y")), db.schema)
            is not None
        )
        assert view.find(("unknown",), template, db.schema) is None

    def test_get_exact_searches_every_pipeline(self, view_setup):
        from repro.index.inverted import prefix_template

        db, group, template, registries, view = view_setup
        wanted = prefix_template(template, 3)
        assert view.get_exact(group.key, wanted) is registries[
            "pipe-2"
        ].get_exact(group.key, wanted)
        assert view.get_exact(group.key, location_template(("Z",))) is None

    def test_longest_prefix_picks_best_across_pipelines(self, view_setup):
        db, group, template, __, view = view_setup
        # pipe-1's base index serves a length-2 prefix; pipe-2 holds the
        # length-3 prefix index.  The view must return the longer one.
        hit = view.longest_prefix(group.key, template, db.schema)
        assert hit is not None
        assert hit[0] == 3

    def test_indices_for_group_merges(self, view_setup):
        __, group, __, __, view = view_setup
        assert len(view.indices_for_group(group.key)) == 2

    def test_evict_to_budget_drops_coldest_first(self, view_setup):
        db, group, template, registries, view = view_setup
        # Touch pipe-1's index so pipe-2's becomes the coldest overall.
        registries["pipe-1"].get_exact(
            group.key, base_template(location_template(("X", "Y")))
        )
        before = view.total_bytes()
        pipe2_bytes = registries["pipe-2"].total_bytes()
        dropped, freed = view.evict_to_budget(before - 1)
        assert (dropped, freed) == (1, pipe2_bytes)
        assert len(registries["pipe-2"]) == 0
        assert len(registries["pipe-1"]) == 1

    def test_evict_to_budget_noop_within_budget(self, view_setup):
        __, __, __, __, view = view_setup
        assert view.evict_to_budget(view.total_bytes()) == (0, 0)

    def test_evict_to_budget_zero_clears_everything(self, view_setup):
        __, __, __, registries, view = view_setup
        dropped, __ = view.evict_to_budget(0)
        assert dropped == 2
        assert len(view) == 0
        assert all(len(r) == 0 for r in registries.values())


class TestMaintenance:
    def test_invalidate_group(self, setup):
        db, group, registry = setup
        registry.put(build_index(group, location_template(("X", "Y")), db.schema))
        assert registry.invalidate_group(group.key) == 1
        assert len(registry) == 0

    def test_clear_and_totals(self, setup):
        db, group, registry = setup
        registry.put(build_index(group, location_template(("X", "Y")), db.schema))
        assert registry.total_bytes() > 0
        assert len(registry.indices_for_group(group.key)) == 1
        registry.clear()
        assert len(registry) == 0
        assert registry.total_bytes() == 0
