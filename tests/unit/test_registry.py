"""Unit tests for the index registry."""

import pytest

from repro import IndexRegistry, build_sequence_groups
from repro.core.spec import PatternSymbol
from repro.index.inverted import build_index
from repro.index.registry import base_template
from tests.conftest import location_template, make_figure8_db


@pytest.fixture
def setup():
    db = make_figure8_db()
    groups = build_sequence_groups(db, None, [("card", "card")], [("time", True)])
    group = groups.single_group()
    registry = IndexRegistry()
    return db, group, registry


class TestPutAndFind:
    def test_exact_hit(self, setup):
        db, group, registry = setup
        template = location_template(("X", "Y"))
        index = build_index(group, template, db.schema)
        registry.put(index)
        assert registry.get_exact(group.key, template) is index
        assert registry.find(group.key, template, db.schema) is index

    def test_miss_returns_none(self, setup):
        db, group, registry = setup
        assert registry.find(group.key, location_template(("X", "Y")), db.schema) is None

    def test_base_fallback_filters(self, setup):
        db, group, registry = setup
        base = build_index(
            group, base_template(location_template(("X", "Y"))), db.schema
        )
        registry.put(base)
        xx = registry.find(group.key, location_template(("X", "X")), db.schema)
        assert xx is not None
        assert all(k[0] == k[1] for k in xx.lists)

    def test_base_fallback_not_registered(self, setup):
        db, group, registry = setup
        base = build_index(
            group, base_template(location_template(("X", "Y"))), db.schema
        )
        registry.put(base)
        registry.find(group.key, location_template(("X", "X")), db.schema)
        assert len(registry) == 1  # the derived filter was not stored

    def test_group_isolation(self, setup):
        db, group, registry = setup
        template = location_template(("X", "Y"))
        registry.put(build_index(group, template, db.schema))
        assert registry.find(("other",), template, db.schema) is None

    def test_replace_same_signature(self, setup):
        db, group, registry = setup
        template = location_template(("X", "Y"))
        registry.put(build_index(group, template, db.schema))
        registry.put(build_index(group, template, db.schema))
        assert len(registry) == 1


class TestLongestPrefix:
    def test_finds_longest(self, setup):
        db, group, registry = setup
        template = location_template(("X", "Y", "Y", "X"))
        registry.put(
            build_index(
                group, base_template(location_template(("X", "Y"))), db.schema
            )
        )
        from repro.index.inverted import prefix_template

        registry.put(build_index(group, prefix_template(template, 3), db.schema))
        hit = registry.longest_prefix(group.key, template, db.schema)
        assert hit is not None
        length, index = hit
        assert length == 3

    def test_none_when_empty(self, setup):
        db, group, registry = setup
        assert (
            registry.longest_prefix(
                group.key, location_template(("X", "Y")), db.schema
            )
            is None
        )

    def test_fixed_symbol_prefix_served_by_base(self, setup):
        db, group, registry = setup
        registry.put(
            build_index(
                group, base_template(location_template(("X", "Y"))), db.schema
            )
        )
        sliced = location_template(("X", "Y", "Z")).replace_symbol(
            "X", PatternSymbol("X", "location", "station", fixed="Pentagon")
        )
        hit = registry.longest_prefix(group.key, sliced, db.schema)
        assert hit is not None and hit[0] == 2
        assert all(k[0] == "Pentagon" for k in hit[1].lists)


class TestMaintenance:
    def test_invalidate_group(self, setup):
        db, group, registry = setup
        registry.put(build_index(group, location_template(("X", "Y")), db.schema))
        assert registry.invalidate_group(group.key) == 1
        assert len(registry) == 0

    def test_clear_and_totals(self, setup):
        db, group, registry = setup
        registry.put(build_index(group, location_template(("X", "Y")), db.schema))
        assert registry.total_bytes() > 0
        assert len(registry.indices_for_group(group.key)) == 1
        registry.clear()
        assert len(registry) == 0
        assert registry.total_bytes() == 0
