"""Unit tests for the six S-OLAP operations and the classical ones."""

import pytest

from repro import (
    Comparison,
    Literal,
    MatchingPredicate,
    OperationError,
    PlaceholderField,
)
from repro.core import operations as ops
from repro.events.expression import TruePredicate
from tests.conftest import figure8_spec, make_transit_schema


def in_predicate(placeholders=("x1", "y1")):
    return MatchingPredicate(
        placeholders,
        Comparison(PlaceholderField("x1", "action"), "=", Literal("in")),
    )


class TestAppendPrepend:
    def test_append_new_symbol(self):
        spec = figure8_spec(("X", "Y"))
        grown = ops.append(spec, "Z", "location", "station")
        assert grown.template.positions == ("X", "Y", "Z")
        assert grown.template.n_dims == 3

    def test_append_existing_symbol(self):
        spec = figure8_spec(("X", "Y"))
        grown = ops.append(spec, "Y")
        assert grown.template.positions == ("X", "Y", "Y")
        assert grown.template.n_dims == 2

    def test_append_new_symbol_requires_domain(self):
        spec = figure8_spec(("X", "Y"))
        with pytest.raises(OperationError):
            ops.append(spec, "Z")

    def test_append_conflicting_rebinding_raises(self):
        spec = figure8_spec(("X", "Y"))
        with pytest.raises(OperationError):
            ops.append(spec, "Y", "location", "district")

    def test_prepend_reorders_symbols(self):
        spec = figure8_spec(("X", "Y"))
        grown = ops.prepend(spec, "Z", "location", "station")
        assert grown.template.positions == ("Z", "X", "Y")
        assert [s.name for s in grown.template.symbols] == ["Z", "X", "Y"]

    def test_append_extends_predicate_placeholders(self):
        spec = figure8_spec(("X", "Y"), predicate=in_predicate())
        grown = ops.append(spec, "Z", "location", "station")
        assert len(grown.predicate.placeholders) == 3

    def test_append_with_named_placeholder_and_extra(self):
        spec = figure8_spec(("X", "Y"), predicate=in_predicate())
        extra = Comparison(PlaceholderField("z1", "action"), "=", Literal("out"))
        grown = ops.append(
            spec, "Z", "location", "station", placeholder="z1", extra_predicate=extra
        )
        assert grown.predicate.placeholders[-1] == "z1"
        assert "z1" in grown.predicate.expr.placeholders()

    def test_append_extra_without_existing_predicate(self):
        spec = figure8_spec(("X", "Y"))
        extra = Comparison(PlaceholderField("z1", "action"), "=", Literal("out"))
        grown = ops.append(
            spec, "Z", "location", "station", placeholder="z1", extra_predicate=extra
        )
        assert grown.predicate is not None
        assert grown.predicate.placeholders == ("p1", "p2", "z1")

    def test_duplicate_placeholder_raises(self):
        spec = figure8_spec(("X", "Y"), predicate=in_predicate())
        with pytest.raises(OperationError):
            ops.append(spec, "Z", "location", "station", placeholder="x1")

    def test_prepend_places_placeholder_first(self):
        spec = figure8_spec(("X", "Y"), predicate=in_predicate())
        grown = ops.prepend(spec, "Z", "location", "station", placeholder="z0")
        assert grown.predicate.placeholders[0] == "z0"


class TestDeTailDeHead:
    def test_de_tail(self):
        spec = figure8_spec(("X", "Y", "Z"))
        shrunk = ops.de_tail(spec)
        assert shrunk.template.positions == ("X", "Y")
        assert shrunk.template.n_dims == 2

    def test_de_head_reorders(self):
        spec = figure8_spec(("X", "Y"))
        shrunk = ops.de_head(spec)
        assert shrunk.template.positions == ("Y",)
        assert [s.name for s in shrunk.template.symbols] == ["Y"]

    def test_append_then_de_tail_roundtrip(self):
        spec = figure8_spec(("X", "Y"))
        assert ops.de_tail(ops.append(spec, "Z", "location", "station")) == spec

    def test_cannot_shrink_singleton(self):
        spec = figure8_spec(("X",))
        with pytest.raises(OperationError):
            ops.de_tail(spec)
        with pytest.raises(OperationError):
            ops.de_head(spec)

    def test_de_tail_prunes_predicate_terms(self):
        expr = Comparison(PlaceholderField("x1", "action"), "=", Literal("in")) & \
            Comparison(PlaceholderField("y1", "action"), "=", Literal("out"))
        spec = figure8_spec(
            ("X", "Y"), predicate=MatchingPredicate(("x1", "y1"), expr)
        )
        shrunk = ops.de_tail(spec)
        assert shrunk.predicate.placeholders == ("x1",)
        assert "y1" not in shrunk.predicate.expr.placeholders()

    def test_de_tail_entangled_predicate_raises(self):
        expr = Comparison(
            PlaceholderField("x1", "location"),
            "=",
            PlaceholderField("y1", "location"),
        )
        spec = figure8_spec(
            ("X", "Y"), predicate=MatchingPredicate(("x1", "y1"), expr)
        )
        with pytest.raises(OperationError):
            ops.de_tail(spec)

    def test_de_head_prunes_to_true(self):
        spec = figure8_spec(("X", "Y"), predicate=in_predicate())
        shrunk = ops.de_head(spec)
        assert isinstance(shrunk.predicate.expr, TruePredicate)


class TestPatternLevelOps:
    def test_p_roll_up(self):
        schema = make_transit_schema()
        spec = figure8_spec(("X", "Y"))
        rolled = ops.p_roll_up(spec, "Y", schema)
        assert rolled.template.symbol("Y").level == "district"

    def test_p_roll_up_past_top_raises(self):
        schema = make_transit_schema()
        spec = figure8_spec(("X", "Y"))
        rolled = ops.p_roll_up(spec, "Y", schema)
        with pytest.raises(OperationError):
            ops.p_roll_up(rolled, "Y", schema)

    def test_p_roll_up_translates_fixed(self):
        schema = make_transit_schema()
        spec = ops.slice_pattern(figure8_spec(("X", "Y")), "X", "Pentagon")
        rolled = ops.p_roll_up(spec, "X", schema)
        assert rolled.template.symbol("X").fixed == "D10"

    def test_p_drill_down_converts_fixed_to_within(self):
        schema = make_transit_schema()
        spec = figure8_spec(("X", "Y"))
        rolled = ops.p_roll_up(spec, "Y", schema)
        sliced = ops.slice_pattern(rolled, "Y", "D10")
        drilled = ops.p_drill_down(sliced, "Y", schema)
        symbol = drilled.template.symbol("Y")
        assert symbol.level == "station"
        assert symbol.fixed is None
        assert symbol.within == ("district", "D10")

    def test_p_drill_down_past_base_raises(self):
        schema = make_transit_schema()
        spec = figure8_spec(("X", "Y"))
        with pytest.raises(OperationError):
            ops.p_drill_down(spec, "Y", schema)

    def test_roll_then_drill_identity_on_levels(self):
        schema = make_transit_schema()
        spec = figure8_spec(("X", "Y"))
        back = ops.p_drill_down(ops.p_roll_up(spec, "X", schema), "X", schema)
        assert back.template.symbol("X").level == "station"

    def test_slice_and_unslice_pattern(self):
        spec = figure8_spec(("X", "Y"))
        sliced = ops.slice_pattern(spec, "X", "Pentagon")
        assert sliced.template.symbol("X").fixed == "Pentagon"
        assert ops.unslice_pattern(sliced, "X") == spec


class TestGlobalOps:
    def grouped_spec(self):
        return figure8_spec(("X", "Y"), group_by=(("location", "district"),))

    def test_roll_up_global_past_top_raises(self):
        schema = make_transit_schema()
        with pytest.raises(OperationError):
            ops.roll_up_global(self.grouped_spec(), "location", schema)

    def test_drill_down_global(self):
        schema = make_transit_schema()
        spec = self.grouped_spec()
        drilled = ops.drill_down_global(spec, "location", schema)
        assert drilled.group_by == (("location", "station"),)

    def test_drill_down_global_at_base_raises(self):
        schema = make_transit_schema()
        spec = figure8_spec(("X", "Y"), group_by=(("location", "station"),))
        with pytest.raises(OperationError):
            ops.drill_down_global(spec, "location", schema)

    def test_roll_up_global_translates_slice(self):
        schema = make_transit_schema()
        spec = figure8_spec(("X", "Y"), group_by=(("location", "station"),))
        sliced = ops.slice_global(spec, "location", "Pentagon")
        rolled = ops.roll_up_global(sliced, "location", schema)
        assert rolled.group_by == (("location", "district"),)
        assert rolled.global_slice == ((0, "D10"),)

    def test_drill_down_sliced_raises(self):
        schema = make_transit_schema()
        spec = ops.slice_global(self.grouped_spec(), "location", "D10")
        with pytest.raises(OperationError):
            ops.drill_down_global(spec, "location", schema)

    def test_slice_dice_unslice(self):
        spec = self.grouped_spec()
        sliced = ops.slice_global(spec, "location", "D10")
        assert sliced.global_slice == ((0, "D10"),)
        diced = ops.dice_global(spec, "location", ("D10", "D20"))
        assert diced.global_slice == ((0, ("D10", "D20")),)
        assert ops.unslice_global(sliced, "location").global_slice == ()

    def test_slice_replaces_previous_slice(self):
        spec = self.grouped_spec()
        sliced = ops.slice_global(
            ops.slice_global(spec, "location", "D10"), "location", "D20"
        )
        assert sliced.global_slice == ((0, "D20"),)

    def test_unknown_global_dimension_raises(self):
        with pytest.raises(OperationError):
            ops.slice_global(self.grouped_spec(), "card", 1)
