"""Unit tests for the columnar event database."""

import pytest

from repro import Comparison, EventDatabase, EventField, Literal, SchemaError
from tests.conftest import make_figure8_db, make_transit_schema


class TestLoading:
    def test_append_returns_row_index(self):
        db = EventDatabase(make_transit_schema())
        row = db.append(
            {"time": 0, "card": 1, "location": "Pentagon", "action": "in"}
        )
        assert row == 0
        assert len(db) == 1

    def test_missing_measure_defaults_to_none(self):
        db = EventDatabase(make_transit_schema())
        db.append({"time": 0, "card": 1, "location": "Pentagon", "action": "in"})
        assert db.event(0)["amount"] is None

    def test_missing_dimension_raises(self):
        db = EventDatabase(make_transit_schema())
        with pytest.raises(SchemaError):
            db.append({"time": 0, "card": 1, "action": "in"})

    def test_from_records(self):
        db = make_figure8_db()
        assert len(db) == 16  # 6 + 4 + 2 + 4 events


class TestAccess:
    def test_event_view_is_mapping(self):
        db = make_figure8_db()
        event = db.event(0)
        assert event["location"] == "Glenmont"
        assert event["action"] == "in"
        assert set(event) == set(db.schema.attributes)
        assert len(event) == len(db.schema.attributes)
        assert event.to_dict()["card"] == 688

    def test_event_out_of_range(self):
        db = make_figure8_db()
        with pytest.raises(IndexError):
            db.event(999)

    def test_unknown_column_raises(self):
        db = make_figure8_db()
        with pytest.raises(SchemaError):
            db.column("ghost")

    def test_iteration_yields_all_rows(self):
        db = make_figure8_db()
        assert sum(1 for __ in db) == len(db)

    def test_mapped_column_base_level_is_same_object(self):
        db = make_figure8_db()
        assert db.mapped_column("location", "station") is db.column("location")

    def test_mapped_column_district(self):
        db = make_figure8_db()
        districts = db.mapped_column("location", "district")
        assert districts[0] == "D20"  # Glenmont
        assert districts[1] == "D10"  # Pentagon

    def test_mapped_value(self):
        db = make_figure8_db()
        assert db.mapped_value(1, "location", "district") == "D10"


class TestSelection:
    def test_select_all(self):
        db = make_figure8_db()
        assert db.select() == list(range(len(db)))

    def test_select_with_predicate(self):
        db = make_figure8_db()
        predicate = Comparison(EventField("action"), "=", Literal("in"))
        rows = db.select(predicate)
        assert rows
        assert all(db.event(r)["action"] == "in" for r in rows)

    def test_scan_is_lazy(self):
        db = make_figure8_db()
        scanner = db.scan()
        assert next(scanner) == 0


class TestIntrospection:
    def test_distinct_base_level(self):
        db = make_figure8_db()
        values = db.distinct("location")
        assert "Pentagon" in values and "Deanwood" in values

    def test_distinct_at_level(self):
        db = make_figure8_db()
        assert db.distinct("location", "district") == ("D10", "D20", "D30")

    def test_size_bytes_positive_and_monotone(self):
        db = make_figure8_db()
        small = EventDatabase(db.schema)
        assert db.size_bytes() > small.size_bytes() > 0

    def test_repr_mentions_counts(self):
        db = make_figure8_db()
        assert "16 events" in repr(db)
