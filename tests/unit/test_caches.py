"""Unit tests for the sequence cache and the cuboid repository."""

import pytest

from repro import SCuboid, SequenceCache
from repro.core.repository import CuboidRepository, estimate_cuboid_bytes
from tests.conftest import figure8_spec


def make_cuboid(n_cells=3):
    spec = figure8_spec(("X", "Y"))
    cells = {
        ((), (f"a{i}", f"b{i}")): {"COUNT(*)": i} for i in range(n_cells)
    }
    return SCuboid(spec, cells)


class TestSequenceCache:
    def test_put_get(self):
        cache = SequenceCache(2)
        cache.put("k1", "groups1")  # type: ignore[arg-type]
        assert cache.get("k1") == "groups1"
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = SequenceCache(2)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        cache.put("b", 2)  # type: ignore[arg-type]
        cache.get("a")  # refresh a
        cache.put("c", 3)  # type: ignore[arg-type]
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_invalidate_and_clear(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        cache.put("b", 2)  # type: ignore[arg-type]
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SequenceCache(0)


class TestCuboidRepository:
    def test_put_get_hit_stats(self):
        repo = CuboidRepository(capacity=4)
        cuboid = make_cuboid()
        repo.put("k", cuboid)
        assert repo.get("k") is cuboid
        assert repo.hits == 1 and repo.misses == 0
        assert repo.get("other") is None
        assert repo.misses == 1

    def test_lru_eviction_by_count(self):
        repo = CuboidRepository(capacity=2)
        repo.put("a", make_cuboid())
        repo.put("b", make_cuboid())
        repo.get("a")
        repo.put("c", make_cuboid())
        assert "b" not in repo
        assert "a" in repo

    def test_byte_budget_eviction(self):
        small = estimate_cuboid_bytes(make_cuboid(1))
        repo = CuboidRepository(capacity=100, byte_budget=int(small * 2.5))
        repo.put("a", make_cuboid(1))
        repo.put("b", make_cuboid(1))
        repo.put("c", make_cuboid(1))
        assert len(repo) == 2
        assert repo.bytes_used <= small * 2.5

    def test_replacing_updates_bytes(self):
        repo = CuboidRepository(capacity=4)
        repo.put("a", make_cuboid(1))
        first = repo.bytes_used
        repo.put("a", make_cuboid(10))
        assert repo.bytes_used > first
        assert len(repo) == 1

    def test_invalidate(self):
        repo = CuboidRepository()
        repo.put("a", make_cuboid())
        assert repo.invalidate("a")
        assert repo.bytes_used == 0
        assert not repo.invalidate("a")

    def test_clear(self):
        repo = CuboidRepository()
        repo.put("a", make_cuboid())
        repo.clear()
        assert len(repo) == 0 and repo.bytes_used == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CuboidRepository(capacity=0)

    def test_estimate_scales_with_cells(self):
        assert estimate_cuboid_bytes(make_cuboid(10)) > estimate_cuboid_bytes(
            make_cuboid(1)
        )
