"""Unit tests for the sequence cache and the cuboid repository."""

import pytest

from repro import SCuboid, SequenceCache
from repro.core.repository import CuboidRepository, estimate_cuboid_bytes
from tests.conftest import figure8_spec


def make_cuboid(n_cells=3):
    spec = figure8_spec(("X", "Y"))
    cells = {
        ((), (f"a{i}", f"b{i}")): {"COUNT(*)": i} for i in range(n_cells)
    }
    return SCuboid(spec, cells)


class TestSequenceCache:
    def test_put_get(self):
        cache = SequenceCache(2)
        cache.put("k1", "groups1")  # type: ignore[arg-type]
        assert cache.get("k1") == "groups1"
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = SequenceCache(2)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        cache.put("b", 2)  # type: ignore[arg-type]
        cache.get("a")  # refresh a
        cache.put("c", 3)  # type: ignore[arg-type]
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_invalidate_and_clear(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        cache.put("b", 2)  # type: ignore[arg-type]
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SequenceCache(0)


class TestSequenceCacheOrdering:
    """Eviction order under interleaved get/put/invalidate traffic."""

    def test_put_existing_refreshes_recency(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        cache.put("b", 2)  # type: ignore[arg-type]
        cache.put("a", 10)  # type: ignore[arg-type]  # rewrite refreshes a
        cache.put("c", 3)  # type: ignore[arg-type]
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_invalidate_does_not_disturb_order(self):
        cache = SequenceCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)  # type: ignore[arg-type]
        cache.invalidate("b")
        cache.put("d", "d")  # type: ignore[arg-type]  # fills the freed slot
        assert set(cache.keys()) == {"a", "c", "d"}
        cache.put("e", "e")  # type: ignore[arg-type]  # now `a` is coldest
        assert "a" not in cache
        assert set(cache.keys()) == {"c", "d", "e"}

    def test_eviction_order_after_mixed_traffic(self):
        cache = SequenceCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)  # type: ignore[arg-type]
        cache.get("a")  # order coldest-first is now: b, c, a
        cache.get("b")  # order: c, a, b
        cache.put("d", "d")  # type: ignore[arg-type]
        assert "c" not in cache
        cache.put("e", "e")  # type: ignore[arg-type]
        assert "a" not in cache
        assert list(cache.keys()) == ["b", "d", "e"]

    def test_failed_get_does_not_refresh(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        cache.put("b", 2)  # type: ignore[arg-type]
        cache.get("missing")  # must not touch the LRU order
        cache.put("c", 3)  # type: ignore[arg-type]
        assert "a" not in cache and "b" in cache

    def test_stats_and_hit_ratio(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hit_ratio() == pytest.approx(2 / 3)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["capacity"] == 2
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_hit_ratio_with_no_traffic(self):
        assert SequenceCache(2).hit_ratio() == 0.0

    def test_evictions_counted(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        cache.put("b", 2)  # type: ignore[arg-type]
        assert cache.evictions == 0
        cache.put("c", 3)  # type: ignore[arg-type]
        cache.put("d", 4)  # type: ignore[arg-type]
        assert cache.evictions == 2
        assert cache.stats()["evictions"] == 2
        assert "evictions=2" in repr(cache)

    def test_invalidate_and_clear_are_not_evictions(self):
        cache = SequenceCache(2)
        cache.put("a", 1)  # type: ignore[arg-type]
        cache.invalidate("a")
        cache.put("b", 2)  # type: ignore[arg-type]
        cache.clear()
        assert cache.evictions == 0


class TestCuboidRepository:
    def test_put_get_hit_stats(self):
        repo = CuboidRepository(capacity=4)
        cuboid = make_cuboid()
        repo.put("k", cuboid)
        assert repo.get("k") is cuboid
        assert repo.hits == 1 and repo.misses == 0
        assert repo.get("other") is None
        assert repo.misses == 1

    def test_lru_eviction_by_count(self):
        repo = CuboidRepository(capacity=2)
        repo.put("a", make_cuboid())
        repo.put("b", make_cuboid())
        repo.get("a")
        repo.put("c", make_cuboid())
        assert "b" not in repo
        assert "a" in repo

    def test_byte_budget_eviction(self):
        small = estimate_cuboid_bytes(make_cuboid(1))
        repo = CuboidRepository(capacity=100, byte_budget=int(small * 2.5))
        repo.put("a", make_cuboid(1))
        repo.put("b", make_cuboid(1))
        repo.put("c", make_cuboid(1))
        assert len(repo) == 2
        assert repo.bytes_used <= small * 2.5

    def test_replacing_updates_bytes(self):
        repo = CuboidRepository(capacity=4)
        repo.put("a", make_cuboid(1))
        first = repo.bytes_used
        repo.put("a", make_cuboid(10))
        assert repo.bytes_used > first
        assert len(repo) == 1

    def test_invalidate(self):
        repo = CuboidRepository()
        repo.put("a", make_cuboid())
        assert repo.invalidate("a")
        assert repo.bytes_used == 0
        assert not repo.invalidate("a")

    def test_clear(self):
        repo = CuboidRepository()
        repo.put("a", make_cuboid())
        repo.clear()
        assert len(repo) == 0 and repo.bytes_used == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CuboidRepository(capacity=0)

    def test_estimate_scales_with_cells(self):
        assert estimate_cuboid_bytes(make_cuboid(10)) > estimate_cuboid_bytes(
            make_cuboid(1)
        )

    def test_evictions_counted(self):
        repo = CuboidRepository(capacity=2)
        repo.put("a", make_cuboid())
        repo.put("b", make_cuboid())
        assert repo.evictions == 0
        repo.put("c", make_cuboid())
        assert repo.evictions == 1
        assert "evictions=1" in repr(repo)

    def test_byte_budget_evictions_counted(self):
        small = estimate_cuboid_bytes(make_cuboid(1))
        repo = CuboidRepository(capacity=100, byte_budget=int(small * 2.5))
        for key in ("a", "b", "c", "d"):
            repo.put(key, make_cuboid(1))
        assert repo.evictions == 2

    def test_invalidate_is_not_an_eviction(self):
        repo = CuboidRepository()
        repo.put("a", make_cuboid())
        repo.invalidate("a")
        assert repo.evictions == 0


class TestByteAccountingUnderMutation:
    """put() overwrites must not corrupt the byte ledger (regression).

    The old implementation re-estimated the *current* object on
    overwrite; since cell dicts are mutable and shared, an in-place
    mutation between two puts of the same cuboid made the subtraction
    use the post-mutation estimate — leaving ``bytes_used`` stale
    forever.  Entries now remember their insert-time estimate.
    """

    def test_overwrite_after_inplace_mutation_stays_exact(self):
        repo = CuboidRepository(capacity=4)
        cuboid = make_cuboid(2)
        repo.put("k", cuboid)
        # grow the cached object in place (e.g. a caller mutating cells)
        for i in range(20):
            cuboid.cells[((), (f"x{i}", f"y{i}"))] = {"COUNT(*)": i}
        repo.put("k", cuboid)
        assert repo.bytes_used == estimate_cuboid_bytes(cuboid)

    def test_shrinking_mutation_never_goes_negative(self):
        repo = CuboidRepository(capacity=4)
        cuboid = make_cuboid(10)
        repo.put("k", cuboid)
        cuboid.cells.clear()
        repo.put("k", cuboid)
        assert repo.bytes_used == estimate_cuboid_bytes(cuboid)
        assert repo.bytes_used >= 0

    def test_eviction_uses_insert_time_estimate(self):
        repo = CuboidRepository(capacity=1)
        cuboid = make_cuboid(5)
        repo.put("a", cuboid)
        cuboid.cells.clear()  # mutate after insert
        repo.put("b", make_cuboid(1))  # evicts "a"
        assert repo.bytes_used == estimate_cuboid_bytes(make_cuboid(1))


class TestPayloadAwareEstimate:
    def test_tuple_payloads_cost_more_than_scalars(self):
        spec = figure8_spec(("X", "Y"))
        scalar = SCuboid(spec, {((), ("a", "b")): {"COUNT(*)": 3}})
        paired = SCuboid(spec, {((), ("a", "b")): {"COUNT(*)": (3.0, 2)}})
        assert estimate_cuboid_bytes(paired) > estimate_cuboid_bytes(scalar)

    def test_estimate_tracks_actual_cell_contents(self):
        spec = figure8_spec(("X", "Y"))
        sparse = SCuboid(spec, {((), ("a", "b")): {}})
        dense = SCuboid(
            spec,
            {((), ("a", "b")): {"COUNT(*)": 1, "SUM(amount)": 2.0}},
        )
        assert estimate_cuboid_bytes(dense) > estimate_cuboid_bytes(sparse)


class TestBenefitWeightedEviction:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CuboidRepository(policy="random")

    def test_cheapest_to_recompute_is_evicted_first(self):
        repo = CuboidRepository(capacity=2, policy="benefit")
        repo.put("cheap", make_cuboid(2), cost_seconds=0.001)
        repo.put("expensive", make_cuboid(2), cost_seconds=5.0)
        repo.get("cheap")  # recency would keep "cheap" under LRU...
        repo.put("new", make_cuboid(2), cost_seconds=0.5)
        # ...but benefit-weighting evicts the cheap-to-recompute entry
        assert "cheap" not in repo
        assert "expensive" in repo and "new" in repo

    def test_reuse_raises_retention_benefit(self):
        repo = CuboidRepository(capacity=2, policy="benefit")
        repo.put("a", make_cuboid(2), cost_seconds=1.0)
        repo.put("b", make_cuboid(2), cost_seconds=1.0)
        for __ in range(5):
            repo.get("a")  # frequently reused
        repo.put("c", make_cuboid(2), cost_seconds=1.0)
        assert "a" in repo
        assert "b" not in repo

    def test_lru_remains_default(self):
        repo = CuboidRepository(capacity=2)
        assert repo.policy == "lru"
        repo.put("a", make_cuboid(), cost_seconds=100.0)
        repo.put("b", make_cuboid())
        repo.put("c", make_cuboid())
        assert "a" not in repo  # high cost is ignored under LRU

    def test_entry_stats_and_items_snapshot(self):
        repo = CuboidRepository(capacity=4)
        cuboid = make_cuboid(3)
        repo.put("k", cuboid, cost_seconds=0.25)
        stats = repo.entry_stats("k")
        assert stats["cost_seconds"] == 0.25
        assert stats["bytes"] == estimate_cuboid_bytes(cuboid)
        assert stats["hits"] == 0
        repo.get("k")
        assert repo.entry_stats("k")["hits"] == 1
        items = repo.items()
        assert items == [("k", cuboid, 0.25)]
        assert repo.entry_stats("missing") is None
