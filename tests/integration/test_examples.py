"""Integration: every shipped example runs to completion.

The examples double as end-to-end acceptance tests — each one drives the
public API through a real scenario and performs its own internal
assertions (CB == II agreement, exact progressive convergence, ...).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart",
    "transit_analysis",
    "clickstream_analysis",
    "extensions_demo",
    "warehouse_operations",
    "supply_chain",
]


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_agreement(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "agree cell-for-cell" in out


def test_clickstream_finds_published_cells(capsys):
    load_example("clickstream_analysis").main()
    out = capsys.readouterr().out
    assert "product-id-null" in out
    assert "(Assortment, Legwear)" in out


def test_warehouse_reports_od_matrix(capsys):
    load_example("warehouse_operations").main()
    out = capsys.readouterr().out
    assert "OD-matrix" in out
    assert "busiest flow" in out
