"""Integration: the Table-1 clickstream exploration (Qa -> Qb -> Qc)."""

import pytest

from repro.bench import run_clickstream_exploration
from repro.datagen import (
    ClickstreamConfig,
    generate_clickstream,
    remove_crawler_sessions,
)


@pytest.fixture(scope="module")
def db():
    raw = generate_clickstream(ClickstreamConfig(n_sessions=1200, seed=51))
    return remove_crawler_sessions(raw)


@pytest.fixture(scope="module")
def runs(db):
    return {
        "cb": run_clickstream_exploration(db, "cb"),
        "ii": run_clickstream_exploration(db, "ii"),
    }


class TestTable1Shape:
    def test_three_queries_each(self, runs):
        assert [s.label for s in runs["cb"]] == ["Qa", "Qb", "Qc"]
        assert [s.label for s in runs["ii"]] == ["Qa", "Qb", "Qc"]

    def test_cell_counts_agree(self, runs):
        for cb, ii in zip(runs["cb"], runs["ii"]):
            assert cb.cells == ii.cells, cb.label

    def test_cb_rescans_everything_each_query(self, runs, db):
        n_sessions = len(set(db.column("session-id")))
        for step in runs["cb"]:
            assert step.sequences_scanned == n_sessions

    def test_ii_scans_less_after_slice(self, runs):
        """The paper's key observation: Qb and Qc scan far fewer sequences
        under II than under CB (2,201 and 842 vs 50,524)."""
        cb = {s.label: s for s in runs["cb"]}
        ii = {s.label: s for s in runs["ii"]}
        assert ii["Qb"].sequences_scanned < cb["Qb"].sequences_scanned / 2
        assert ii["Qc"].sequences_scanned < cb["Qc"].sequences_scanned / 2

    def test_ii_builds_indices_cb_does_not(self, runs):
        assert sum(s.index_bytes_built for s in runs["cb"]) == 0
        assert sum(s.index_bytes_built for s in runs["ii"]) > 0

    def test_qb_scan_count_equals_sliced_cell_size(self, runs, db):
        """II's Qb scans exactly the sessions listed under the sliced
        (Assortment, Legwear) cell — the paper's 2,201."""
        from repro import SOLAPEngine
        from repro.datagen import two_step_spec

        qa_cuboid, __ = SOLAPEngine(db).execute(two_step_spec(), "cb")
        cell_count = qa_cuboid.count(("Assortment", "Legwear"))
        ii = {s.label: s for s in runs["ii"]}
        assert ii["Qb"].sequences_scanned == cell_count
