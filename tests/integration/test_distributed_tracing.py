"""Integration tests: one query-wide trace across workers and shards.

The coordinator ships a SpanContext in every task payload; workers record
their stage spans under a RemoteSpanCollector and the coordinator grafts
the returned subtrees (origin-marked) under its scan span.  These tests
pin the end-to-end contract on every backend: worker spans from every
shard, per-query resource profiles, no double-counted stage time, zero
work-counter drift, and bit-identical results with tracing on.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import SOLAPEngine
from repro.obs.analyze import stage_timings
from repro.obs.spans import trace_to_json
from repro.service import QueryService, ServiceConfig
from tests.conftest import figure8_spec, make_figure8_db


def run_traced(backend, shards, **config_kwargs):
    config = ServiceConfig(
        max_workers=2,
        shards=shards,
        executor_backend=backend,
        parallel_scan_threshold=100000,
        **config_kwargs,
    )
    with QueryService(make_figure8_db(), config) as service:
        cuboid, stats = service.execute(
            figure8_spec(("X", "Y")), "cb", analyze=True
        )
    return cuboid, stats


def remote_roots(root):
    return [node for node in root.walk() if node.origin is not None]


class TestScatterGatherTracing:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_worker_spans_from_every_shard(self, backend):
        __, stats = run_traced(backend, shards=2)
        grafted = remote_roots(stats.trace)
        fanout = stats.extra["shard_fanout"]
        assert len(grafted) == fanout
        assert sorted(node.origin["shard"] for node in grafted) == list(
            range(fanout)
        )
        for node in grafted:
            assert node.origin["backend"] == backend
            assert node.origin["pid"]
            for stage in ("attach", "rebuild", "match", "fold"):
                assert node.find(f"worker.{stage}") is not None, stage

    def test_process_backend_worker_spans(self):
        __, stats = run_traced("process", shards=2)
        grafted = remote_roots(stats.trace)
        assert len(grafted) == stats.extra["shard_fanout"]
        for node in grafted:
            assert node.origin["backend"] == "process"
            for stage in ("attach", "rebuild", "match", "fold"):
                assert node.find(f"worker.{stage}") is not None, stage
        # the kernel's own spans ride under worker.match
        assert any(
            node.find("cb.scan") is not None for node in grafted
        )

    def test_resource_profile_in_stats_extra(self):
        __, stats = run_traced("thread", shards=2)
        profile = stats.extra["resource_profile"]
        fanout = stats.extra["shard_fanout"]
        assert profile["backend"] == "thread"
        assert profile["fanout"] == fanout
        assert len(profile["workers"]) == fanout
        assert profile["sequences_scanned"] == stats.sequences_scanned
        assert profile["rows_scanned"] > 0
        assert profile["bytes_scanned"] > 0
        assert profile["cells_merged"] > 0
        for worker in profile["workers"]:
            assert worker["match_s"] >= 0.0
            assert worker["sequences_scanned"] >= 1
        json.dumps(profile)

    def test_plan_renders_distributed_breakdown(self):
        __, stats = run_traced("thread", shards=2)
        rendered = stats.plan.render()
        assert "distributed execution:" in rendered
        assert "shard 0" in rendered and "shard 1" in rendered
        assert "rebuild" in rendered and "match" in rendered
        assert stats.plan.to_dict()["extra"]["resource_profile"]

    def test_accounted_excludes_remote_stage_time(self):
        __, stats = run_traced("thread", shards=2)
        root = stats.trace
        local = stage_timings(root)
        # no stage is counted twice: local stages are unique by name here
        names = [name for name, __s, __d in local]
        assert len(names) == len(set(names))
        accounted = sum(duration for __n, __s, duration in local)
        total = root.duration_seconds
        assert accounted <= total * 1.01
        # accounted% stays meaningful (the scatter wall time lives in
        # the local aggregation span, not only in worker subtrees)
        assert accounted >= total * 0.5

    def test_trace_exports_to_json_with_origin(self):
        __, stats = run_traced("thread", shards=2)
        doc = json.loads(trace_to_json(stats.trace, stats))
        assert doc["trace_schema"] == 2

        def walk(node):
            yield node
            for child in node.get("children", ()):
                yield from walk(child)

        origins = [
            node["origin"] for node in walk(doc["root"]) if "origin" in node
        ]
        assert len(origins) == stats.extra["shard_fanout"]
        assert all("pid" in origin for origin in origins)

    def test_results_bit_identical_and_counters_undrifted(self):
        spec = figure8_spec(("X", "Y"))
        baseline, base_stats = SOLAPEngine(make_figure8_db()).execute(
            spec, "cb"
        )
        for backend in ("serial", "thread", "process"):
            traced, stats = run_traced(backend, shards=2)
            assert traced.cells == baseline.cells, backend
            assert (
                stats.sequences_scanned == base_stats.sequences_scanned
            ), backend

    def test_untraced_query_has_no_trace_or_profile(self):
        config = ServiceConfig(
            max_workers=2,
            shards=2,
            executor_backend="thread",
            parallel_scan_threshold=100000,
            flight_recorder_capacity=0,  # no sampling promotion
        )
        with QueryService(make_figure8_db(), config) as service:
            __, stats = service.execute(figure8_spec(("X", "Y")), "cb")
        assert stats.trace is None
        assert "resource_profile" not in stats.extra


class TestParallelScanTracing:
    def test_chunk_worker_spans_grafted(self):
        config = ServiceConfig(
            max_workers=2,
            executor_backend="thread",
            parallel_scan_threshold=2,
        )
        with QueryService(make_figure8_db(), config) as service:
            __, stats = service.execute(
                figure8_spec(("X", "Y")), "cb", analyze=True
            )
        assert stats.extra.get("parallel_shards", 0) >= 2
        scan = stats.trace.find("cb.parallel_scan")
        assert scan is not None
        grafted = remote_roots(scan)
        assert len(grafted) == stats.extra["parallel_shards"]
        for node in grafted:
            assert node.find("worker.match") is not None
        assert scan.find("cb.fold") is not None

    def test_parallel_scan_bit_identical_under_tracing(self):
        spec = figure8_spec(("X", "Y"))
        baseline, __ = SOLAPEngine(make_figure8_db()).execute(spec, "cb")
        config = ServiceConfig(
            max_workers=2,
            executor_backend="thread",
            parallel_scan_threshold=2,
        )
        with QueryService(make_figure8_db(), config) as service:
            traced, __stats = service.execute(spec, "cb", analyze=True)
        assert traced.cells == baseline.cells


class TestFlightRecorderService:
    def test_sampling_promotes_untraced_queries(self):
        config = ServiceConfig(flight_recorder_capacity=8)
        with QueryService(make_figure8_db(), config) as service:
            __, stats = service.execute(figure8_spec(("X", "Y")), "cb")
            # the bucket starts full, so the first query is promoted
            assert stats.trace is not None
            assert len(service.recorder) == 1
            summary = service.recorder.recent()[0]
            assert summary["sampled"] is True
            assert summary["trace_id"]

    def test_explicit_analyze_recorded_not_sampled(self):
        config = ServiceConfig(flight_recorder_capacity=8)
        with QueryService(make_figure8_db(), config) as service:
            service.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
            summary = service.recorder.recent()[0]
            assert summary["sampled"] is False

    def test_recorded_entry_carries_profile_for_sharded_query(self):
        config = ServiceConfig(
            max_workers=2,
            shards=2,
            executor_backend="thread",
            parallel_scan_threshold=100000,
            flight_recorder_capacity=8,
        )
        with QueryService(make_figure8_db(), config) as service:
            service.execute(figure8_spec(("X", "Y")), "cb", analyze=True)
            entry = service.recorder.get(service.recorder.recent()[0]["id"])
        assert entry["profile"]["fanout"] == entry["summary"]["shard_fanout"]
        assert entry["plan"] is not None
        json.dumps(entry)
