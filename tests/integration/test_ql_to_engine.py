"""Integration: query-language text all the way to executed cuboids."""

import pytest

from repro import SOLAPEngine
from repro.datagen import TransitConfig, generate_transit
from repro.ql import format_spec, parse_query

Q1_TEXT = """
SELECT COUNT(*) FROM Event
CLUSTER BY card-id AT individual, time AT day
SEQUENCE BY time ASCENDING
SEQUENCE GROUP BY card-id AT fare-group
CUBOID BY SUBSTRING (X, Y, Y, X)
  WITH X AS location AT station, Y AS location AT station
LEFT-MAXIMALITY (x1, y1, y2, x2)
  WITH x1.action = "in" AND y1.action = "out"
   AND y2.action = "in" AND x2.action = "out"
"""

Q3_TEXT = """
SELECT COUNT(*) FROM Event
CLUSTER BY card-id AT individual, time AT day
SEQUENCE BY time ASCENDING
CUBOID BY SUBSTRING (X, Y)
  WITH X AS location AT station, Y AS location AT station
LEFT-MAXIMALITY (x1, y1)
  WITH x1.action = "in" AND y1.action = "out"
"""

SUM_TEXT = """
SELECT COUNT(*), SUM(amount) OVER MATCHED FROM Event
CLUSTER BY card-id AT individual, time AT day
SEQUENCE BY time ASCENDING
CUBOID BY SUBSTRING (X, Y)
  WITH X AS location AT station, Y AS location AT station
LEFT-MAXIMALITY (x1, y1)
  WITH x1.action = "in" AND y1.action = "out"
"""


@pytest.fixture(scope="module")
def db():
    return generate_transit(TransitConfig(n_cards=100, n_days=3, seed=71))


class TestEndToEnd:
    def test_q1_text_executes(self, db):
        spec = parse_query(Q1_TEXT, db.schema)
        cuboid, stats = SOLAPEngine(db).execute(spec, "cb")
        assert len(cuboid) > 0
        assert cuboid.argmax()[1] == ("Pentagon", "Wheaton")

    def test_q3_both_strategies(self, db):
        spec = parse_query(Q3_TEXT, db.schema)
        cb, __ = SOLAPEngine(db).execute(spec, "cb")
        ii, __ = SOLAPEngine(db).execute(spec, "ii")
        assert cb.to_dict() == ii.to_dict()

    def test_sum_aggregate_executes(self, db):
        spec = parse_query(SUM_TEXT, db.schema)
        cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
        for __g, __c, values in cuboid:
            assert "SUM(amount)" in values
            assert values["SUM(amount)"] <= 0  # fares are negative

    def test_formatter_roundtrip_preserves_results(self, db):
        spec = parse_query(Q1_TEXT, db.schema)
        respec = parse_query(format_spec(spec), db.schema)
        a, __ = SOLAPEngine(db).execute(spec, "cb")
        b, __ = SOLAPEngine(db).execute(respec, "cb")
        assert a.to_dict() == b.to_dict()

    def test_where_clause_restricts_events(self, db):
        windowed = Q3_TEXT.replace(
            "CLUSTER BY", "WHERE time < 1440\nCLUSTER BY"
        )
        spec_all = parse_query(Q3_TEXT, db.schema)
        spec_day0 = parse_query(windowed, db.schema)
        all_, __ = SOLAPEngine(db).execute(spec_all, "cb")
        day0, __ = SOLAPEngine(db).execute(spec_day0, "cb")
        assert day0.total() < all_.total()
