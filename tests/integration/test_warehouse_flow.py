"""Integration: the operational warehouse lifecycle end-to-end.

Persist → reload → advise indices → materialise → daily OD reports →
cost-routed querying → federated cross-vendor analysis, mirroring
examples/warehouse_operations.py with assertions.
"""

from dataclasses import replace

import pytest

from repro import SOLAPEngine
from repro.core.spec import PatternTemplate
from repro.datagen import (
    TransitConfig,
    generate_transit,
    round_trip_spec,
    single_trip_spec,
)
from repro.extensions import FederationCoordinator, VendorSite
from repro.io import load_dataset, save_dataset
from repro.optimizer import IndexAdvisor, advise_for_workload
from repro.reports import daily_od_matrices


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    original = generate_transit(TransitConfig(n_cards=120, n_days=3, seed=55))
    directory = save_dataset(original, tmp_path_factory.mktemp("warehouse"))
    return load_dataset(directory)


class TestPersistedWarehouse:
    def test_reloaded_data_answers_canonical_queries(self, db):
        cuboid, __ = SOLAPEngine(db).execute(round_trip_spec(), "cb")
        assert cuboid.argmax()[1] == ("Pentagon", "Wheaton")

    def test_computed_time_hierarchy_survives_reload(self, db):
        assert db.schema.hierarchy("time").map_value(1441, "day") == 1
        assert db.schema.hierarchy("time").map_value(1441, "week") == 0


class TestAdvisedIndices:
    def test_advise_then_materialize_then_query(self, db):
        engine = SOLAPEngine(db, use_repository=False)
        workload = [single_trip_spec(), round_trip_spec(group_by_fare=False)]
        recommendations = advise_for_workload(engine, workload)
        assert recommendations
        IndexAdvisor.materialize(engine, recommendations, workload[0])
        # Both workload queries agree with a cold CB engine afterwards.
        for spec in workload:
            warm, __ = engine.execute(spec, "ii")
            cold, __ = SOLAPEngine(db).execute(spec, "cb")
            assert warm.to_dict() == cold.to_dict()


class TestDailyReports:
    def test_daily_od_matrices_cover_days(self, db):
        spec = replace(single_trip_spec(), group_by=(("time", "day"),))
        matrices = daily_od_matrices(SOLAPEngine(db), spec)
        assert set(matrices) == {0, 1, 2}
        for matrix in matrices.values():
            # every passenger makes at least one trip each day
            assert matrix.total() >= 120
            rendered = matrix.render()
            assert "total" in rendered

    def test_hot_pair_is_busiest_every_day(self, db):
        spec = replace(single_trip_spec(), group_by=(("time", "day"),))
        matrices = daily_od_matrices(SOLAPEngine(db), spec)
        for matrix in matrices.values():
            origin, destination, __ = matrix.busiest_pair()
            assert {origin, destination} == {"Pentagon", "Wheaton"}


class TestCostRouting:
    def test_cost_strategy_consistent_over_session(self, db):
        engine = SOLAPEngine(db)
        specs = [
            single_trip_spec(),
            round_trip_spec(group_by_fare=False),
            single_trip_spec(),  # repeat: repository hit
        ]
        results = [engine.execute(spec, "cost") for spec in specs]
        assert results[2][1].cuboid_cache_hit
        cold = SOLAPEngine(db)
        for spec, (cuboid, __) in zip(specs, results):
            truth, __s = cold.execute(spec, "cb")
            assert cuboid.to_dict() == truth.to_dict()


class TestFederation:
    def test_subway_bus_transfer_analysis(self, db):
        # The bus vendor sees an overlapping customer population.
        from repro import Dimension, EventDatabase, Schema

        bus_schema = Schema(
            [Dimension("time"), Dimension("card-id"), Dimension("route")]
        )
        bus_db = EventDatabase(bus_schema)
        for card in range(60, 180):  # overlap: cards 60..119
            bus_db.append({"time": 1, "card-id": card, "route": f"B{card % 2}"})

        salt = "transit-federation"
        subway_site = VendorSite(
            "subway",
            db,
            join_key="card-id",
            cluster_by=(("card-id", "individual"),),
            sequence_by=(("time", True),),
            salt=salt,
        )
        bus_site = VendorSite(
            "bus",
            bus_db,
            join_key="card-id",
            cluster_by=(("card-id", "card-id"),),
            sequence_by=(("time", True),),
            salt=salt,
        )
        coordinator = FederationCoordinator([subway_site, bus_site], min_count=3)
        assert coordinator.shared_customers() == 60

        counts = coordinator.cross_counts(
            {
                "subway": PatternTemplate.substring(
                    ("X", "Y"),
                    {
                        "X": ("location", "station"),
                        "Y": ("location", "station"),
                    },
                ),
                "bus": PatternTemplate.substring(
                    ("R",), {"R": ("route", "route")}
                ),
            }
        )
        assert counts
        # No raw card id appears anywhere in the exchanged structures.
        for (subway_pattern, bus_pattern), count in counts.items():
            assert count >= 3
            assert all(isinstance(v, str) for v in subway_pattern)
            assert bus_pattern[0] in ("B0", "B1")
