"""Integration: the two construction strategies agree on every dataset,
template shape, restriction and aggregate combination we throw at them."""

import pytest

from repro import (
    AggregateScope,
    AggregateSpec,
    CellRestriction,
    Comparison,
    EventField,
    Literal,
    MatchingPredicate,
    PlaceholderField,
    SOLAPEngine,
)
from repro.core import operations as ops
from repro.datagen import (
    ClickstreamConfig,
    SyntheticConfig,
    TransitConfig,
    generate_clickstream,
    generate_event_database,
    generate_transit,
    two_step_spec,
)
from repro.datagen.synthetic import base_spec
from repro.datagen.transit import in_out_predicate, round_trip_spec
from tests.conftest import figure8_spec, make_figure8_db


def assert_equivalent(db, spec):
    cb, stats_cb = SOLAPEngine(db).execute(spec, "cb")
    ii, stats_ii = SOLAPEngine(db).execute(spec, "ii")
    assert cb.to_dict() == ii.to_dict(), spec
    return cb


@pytest.fixture(scope="module")
def synthetic_db():
    return generate_event_database(SyntheticConfig(D=200, L=12, seed=31))


@pytest.fixture(scope="module")
def transit_db():
    return generate_transit(TransitConfig(n_cards=80, n_days=3, seed=32))


class TestSyntheticShapes:
    @pytest.mark.parametrize(
        "positions",
        [("X",), ("X", "Y"), ("X", "X"), ("X", "Y", "Z"), ("X", "Y", "Y", "X"),
         ("X", "Y", "X")],
    )
    def test_substring_templates(self, synthetic_db, positions):
        assert_equivalent(synthetic_db, base_spec(positions))

    @pytest.mark.parametrize("positions", [("X", "Y"), ("X", "X"), ("X", "Y", "X")])
    def test_subsequence_templates(self, synthetic_db, positions):
        from repro.core.spec import PatternKind

        spec = base_spec(positions, kind=PatternKind.SUBSEQUENCE)
        assert_equivalent(synthetic_db, spec)

    @pytest.mark.parametrize("level", ["group", "supergroup"])
    def test_coarse_levels(self, synthetic_db, level):
        assert_equivalent(synthetic_db, base_spec(("X", "Y"), level=level))

    def test_mixed_levels(self, synthetic_db):
        spec = base_spec(
            ("X", "Y", "Z"),
            per_symbol_levels={"X": "group", "Y": "symbol", "Z": "supergroup"},
        )
        assert_equivalent(synthetic_db, spec)

    @pytest.mark.parametrize(
        "restriction",
        [
            CellRestriction.LEFT_MAXIMALITY,
            CellRestriction.LEFT_MAXIMALITY_DATA,
            CellRestriction.ALL_MATCHED,
        ],
    )
    def test_restrictions(self, synthetic_db, restriction):
        from dataclasses import replace

        spec = replace(base_spec(("X", "Y")), restriction=restriction)
        assert_equivalent(synthetic_db, spec)


class TestTransitShapes:
    def test_round_trip_query(self, transit_db):
        assert_equivalent(transit_db, round_trip_spec())

    def test_round_trip_ungrouped(self, transit_db):
        assert_equivalent(transit_db, round_trip_spec(group_by_fare=False))

    def test_with_where_clause(self, transit_db):
        from dataclasses import replace

        spec = replace(
            round_trip_spec(group_by_fare=False),
            where=Comparison(EventField("time"), "<", Literal(2 * 1440)),
        )
        assert_equivalent(transit_db, spec)

    def test_with_global_slice(self, transit_db):
        spec = ops.slice_global(round_trip_spec(), "card-id", "regular")
        cuboid = assert_equivalent(transit_db, spec)
        assert all(g[0] == "regular" for g in cuboid.group_keys())

    def test_with_measure_aggregates(self, transit_db):
        from dataclasses import replace

        spec = replace(
            round_trip_spec(group_by_fare=False),
            aggregates=(
                AggregateSpec("COUNT"),
                AggregateSpec("SUM", "amount", AggregateScope.SEQUENCE),
                AggregateSpec("MIN", "amount"),
            ),
        )
        assert_equivalent(transit_db, spec)

    def test_sliced_pattern(self, transit_db):
        spec = ops.slice_pattern(
            round_trip_spec(group_by_fare=False), "X", "Pentagon"
        )
        assert_equivalent(transit_db, spec)

    def test_district_rollup(self, transit_db):
        spec = ops.p_roll_up(
            round_trip_spec(group_by_fare=False), "Y", transit_db.schema
        )
        assert_equivalent(transit_db, spec)


class TestOperationSequences:
    """Every navigation step must keep the strategies in lockstep."""

    def run_chain(self, db, spec, steps, strategy):
        engine = SOLAPEngine(db)
        results = []
        current = spec
        for step in steps:
            cuboid, __ = engine.execute(current, strategy)
            results.append(cuboid.to_dict())
            current = step(current, db.schema)
        cuboid, __ = engine.execute(current, strategy)
        results.append(cuboid.to_dict())
        return results

    def test_append_detail_chain(self, synthetic_db):
        steps = [
            lambda s, sch: ops.append(s, "Z", "symbol", "symbol"),
            lambda s, sch: ops.append(s, "Y"),
            lambda s, sch: ops.de_tail(s),
            lambda s, sch: ops.de_head(s),
        ]
        spec = base_spec(("X", "Y"))
        cb = self.run_chain(synthetic_db, spec, steps, "cb")
        ii = self.run_chain(synthetic_db, spec, steps, "ii")
        assert cb == ii

    def test_rollup_drilldown_chain(self, synthetic_db):
        steps = [
            lambda s, sch: ops.p_roll_up(s, "X", sch),
            lambda s, sch: ops.p_roll_up(s, "Y", sch),
            lambda s, sch: ops.p_drill_down(s, "X", sch),
        ]
        spec = base_spec(("X", "Y"))
        cb = self.run_chain(synthetic_db, spec, steps, "cb")
        ii = self.run_chain(synthetic_db, spec, steps, "ii")
        assert cb == ii

    def test_slice_drill_chain_clickstream(self):
        db = generate_clickstream(ClickstreamConfig(n_sessions=400, seed=33))
        steps = [
            lambda s, sch: ops.slice_pattern(s, "X", "Assortment"),
            lambda s, sch: ops.slice_pattern(s, "Y", "Legwear"),
            lambda s, sch: ops.p_drill_down(s, "Y", sch),
            lambda s, sch: ops.append(s, "Z", "page", "raw-page"),
        ]
        spec = two_step_spec()
        cb = self.run_chain(db, spec, steps, "cb")
        ii = self.run_chain(db, spec, steps, "ii")
        assert cb == ii


class TestPredicateEquivalence:
    def test_in_out_predicates(self, transit_db):
        template_positions = ("X", "Y")
        spec = figure8_spec(template_positions)  # reuse shape, rebuild below
        from repro.core.spec import CuboidSpec, PatternTemplate

        spec = CuboidSpec(
            template=PatternTemplate.substring(
                template_positions,
                {name: ("location", "station") for name in template_positions},
            ),
            cluster_by=(("card-id", "individual"), ("time", "day")),
            sequence_by=(("time", True),),
            predicate=in_out_predicate(("x1", "y1")),
        )
        assert_equivalent(transit_db, spec)

    def test_cross_placeholder_predicate(self, synthetic_db):
        predicate = MatchingPredicate(
            ("p1", "p2"),
            Comparison(
                PlaceholderField("p1", "symbol"),
                "!=",
                PlaceholderField("p2", "symbol"),
            ),
        )
        from dataclasses import replace

        spec = replace(base_spec(("X", "Y")), predicate=predicate)
        assert_equivalent(synthetic_db, spec)


class TestFigure8AllTemplates:
    @pytest.mark.parametrize(
        "positions",
        [("X",), ("X", "Y"), ("X", "X"), ("X", "Y", "Y"), ("X", "Y", "Y", "X"),
         ("X", "Y", "Z"), ("X", "Y", "Z", "X"), ("X", "X", "Y")],
    )
    @pytest.mark.parametrize("kind", ["substring", "subsequence"])
    def test_all(self, positions, kind):
        db = make_figure8_db()
        assert_equivalent(db, figure8_spec(positions, kind=kind))
