"""Integration: the synthetic query sets (A, B, C) under both strategies."""

import pytest

from repro.bench import run_queryset_a, run_queryset_b, run_queryset_c
from repro.datagen import SyntheticConfig, generate_event_database


@pytest.fixture(scope="module")
def db():
    return generate_event_database(SyntheticConfig(D=250, L=12, seed=61))


class TestQuerySetA:
    def test_five_queries_and_cells_agree(self, db):
        cb, __ = run_queryset_a(db, "cb", n_queries=5)
        ii, __ = run_queryset_a(db, "ii", n_queries=5)
        assert len(cb) == len(ii) == 5
        for a, b in zip(cb, ii):
            assert a.cells == b.cells, a.label

    def test_cb_scans_whole_dataset_every_query(self, db):
        cb, __ = run_queryset_a(db, "cb", n_queries=4)
        assert all(step.sequences_scanned == 250 for step in cb)

    def test_ii_scans_nothing_on_precomputed_first_query(self, db):
        ii, pre = run_queryset_a(db, "ii", n_queries=4)
        assert pre.sequences_scanned == 250  # the offline precompute
        assert ii[0].sequences_scanned == 0  # QA1 answered from L2

    def test_ii_scans_few_on_followups(self, db):
        ii, __ = run_queryset_a(db, "ii", n_queries=5)
        followup_scans = sum(step.sequences_scanned for step in ii[1:])
        assert followup_scans < 250  # far below one CB rescan

    def test_without_precompute_first_query_scans_once(self, db):
        ii, pre = run_queryset_a(db, "ii", n_queries=2, precompute=False)
        assert pre.sequences_scanned == 0
        assert ii[0].sequences_scanned == 250


class TestQuerySetB:
    def test_cells_agree(self, db):
        cb, __ = run_queryset_b(db, "cb")
        ii, __ = run_queryset_b(db, "ii")
        for a, b in zip(cb, ii):
            assert a.cells == b.cells, a.label

    def test_rollup_is_scan_free_under_ii(self, db):
        ii, __ = run_queryset_b(db, "ii")
        by_label = {step.label: step for step in ii}
        assert by_label["QB3 (roll-up Y)"].sequences_scanned == 0

    def test_drilldown_scans_only_subcube_under_ii(self, db):
        cb, __ = run_queryset_b(db, "cb")
        ii, __ = run_queryset_b(db, "ii")
        cb_by = {s.label: s for s in cb}
        ii_by = {s.label: s for s in ii}
        label = "QB2 (drill-down X)"
        assert ii_by[label].sequences_scanned <= cb_by[label].sequences_scanned


class TestQuerySetC:
    def test_cells_agree(self, db):
        cb, __ = run_queryset_c(db, "cb")
        ii, __ = run_queryset_c(db, "ii")
        for a, b in zip(cb, ii):
            assert a.cells == b.cells, a.label

    def test_repeated_symbol_chain_reuses_indices(self, db):
        ii, __ = run_queryset_c(db, "ii")
        # QC2/QC3 reuse QC1's L2 plus join results: total follow-up scans
        # stay below one full rescan.
        assert sum(s.sequences_scanned for s in ii[1:]) < 250

    def test_subsequence_variant(self, db):
        from repro.core.spec import PatternKind

        cb, __ = run_queryset_c(db, "cb", kind=PatternKind.SUBSEQUENCE)
        ii, __ = run_queryset_c(db, "ii", kind=PatternKind.SUBSEQUENCE)
        for a, b in zip(cb, ii):
            assert a.cells == b.cells, a.label
