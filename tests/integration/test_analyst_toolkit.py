"""Integration: the analyst toolkit (explain → insights → navigate → diff)
drives a full exploration loop on the running example."""

import pytest

from repro import SOLAPEngine, Session
from repro.datagen import TransitConfig, generate_transit, round_trip_spec
from repro.reports import diff_cuboids, suggest_operations


@pytest.fixture(scope="module")
def engine():
    db = generate_transit(TransitConfig(n_cards=150, n_days=3, seed=77))
    return SOLAPEngine(db)


class TestAdvisorDrivenExploration:
    def test_follow_the_advisor(self, engine):
        """Let the advisor's top suggestion drive each step and check the
        session converges to the paper's exploration."""
        session = Session(
            engine, round_trip_spec(group_by_fare=False), strategy="ii"
        )
        cuboid, __ = session.run()
        before = cuboid

        insights = suggest_operations(cuboid, engine.db.schema)
        assert insights and insights[0].operation == "slice_cell"
        session.slice_cell(insights[0].argument)
        sliced, __stats = session.run()

        # the diff confirms slicing only removed mass
        diff = diff_cuboids(before, sliced)
        assert not diff.added
        assert diff.net_change() < 0

        # follow up with APPEND; explain predicts reuse of the join chain
        session.append("Z", attribute="location", level="station")
        plan = session.explain()
        assert "join chain from cached" in plan or "exact index hit" in plan
        appended, stats = session.run()
        total_sequences = engine.sequence_groups(session.spec).total_sequences()
        assert stats.sequences_scanned < total_sequences / 2
        assert appended.spec.template.length == 5

    def test_explain_matches_execution_strategy(self, engine):
        spec = round_trip_spec(group_by_fare=False)
        from repro.core.explain import explain

        plan = explain(engine, spec)
        # after the prior test the repository may hold this spec; accept
        # either a repository hit or a cost recommendation
        assert ("recommended strategy" in plan) or ("HIT" in plan)

    def test_diff_detects_day_over_day_change(self, engine):
        """Slicing consecutive days and diffing shows plausible churn."""
        from repro.core import operations as ops
        from dataclasses import replace

        spec = replace(
            round_trip_spec(group_by_fare=False),
            group_by=(("time", "day"),),
        )
        day0, __ = engine.execute(
            ops.slice_global(spec, "time", 0), "cb"
        )
        day1, __ = engine.execute(
            ops.slice_global(spec, "time", 1), "cb"
        )
        # compare ignoring the group key (different days)
        flat0 = {c: v["COUNT(*)"] for (__g, c), v in day0.to_dict().items()}
        flat1 = {c: v["COUNT(*)"] for (__g, c), v in day1.to_dict().items()}
        # the hot pair is heavy on both days
        assert flat0.get(("Pentagon", "Wheaton"), 0) > 0
        assert flat1.get(("Pentagon", "Wheaton"), 0) > 0
