"""Integration tests for the HTTP+JSON serving layer.

Every test drives a real :class:`~repro.serve.app.SolapServer` bound to
an ephemeral loopback port with stdlib ``urllib``/``http.client``/raw
sockets — the same way the CI smoke job and external clients do.
"""

import json
import socket
import struct
import time
import urllib.error
import urllib.request

import pytest

from repro.ql import format_spec, parse_query
from repro.serve import SolapServer, codecs
from repro.service import QueryService
from tests.conftest import figure8_spec, make_figure8_db

TERMINAL = ("done", "error", "cancelled", "timeout")


@pytest.fixture(scope="module")
def stack():
    service = QueryService(make_figure8_db())
    server = SolapServer(service).start()
    yield service, server
    server.stop()
    service.shutdown()


@pytest.fixture()
def ql():
    return format_spec(figure8_spec(("A", "B")))


def _post(server, path, doc):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(doc).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _delete(server, path):
    request = urllib.request.Request(server.url + path, method="DELETE")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _poll_until_terminal(server, job_id, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        __, doc = _get(server, f"/v1/queries/{job_id}")
        if doc["status"] in TERMINAL:
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


def _stream_frames(server, body):
    request = urllib.request.Request(
        server.url + "/v1/stream",
        data=json.dumps(body).encode("utf-8"),
        method="POST",
    )
    frames = []
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
        assert response.headers["Content-Type"] == "application/x-ndjson"
        for line in response:
            frames.append(json.loads(line))
    return frames


class TestSessions:
    def test_open_describe_close(self, stack, ql):
        service, server = stack
        status, doc = _post(server, "/v1/sessions", {"ql": ql})
        assert status == 201
        session_id = doc["session_id"]
        # The echoed QL is the canonical round-trip of the parsed spec.
        assert parse_query(doc["ql"], service.engine.db.schema) == parse_query(
            ql, service.engine.db.schema
        )
        status, doc = _get(server, f"/v1/sessions/{session_id}")
        assert status == 200
        assert doc["has_result"] is False
        assert doc["steps_executed"] == 0
        status, doc = _delete(server, f"/v1/sessions/{session_id}")
        assert status == 200 and doc["closed"] is True
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, f"/v1/sessions/{session_id}")
        assert excinfo.value.code == 404

    def test_open_requires_ql(self, stack):
        __, server = stack
        for body in ({}, {"ql": ""}, {"ql": 7}):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server, "/v1/sessions", body)
            assert excinfo.value.code == 400

    def test_bad_ql_is_400(self, stack):
        __, server = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/v1/sessions", {"ql": "SELECT nonsense FROM"})
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())


class TestAsyncQueries:
    def test_submit_poll_paginate(self, stack, ql):
        service, server = stack
        status, doc = _post(server, "/v1/queries", {"ql": ql})
        assert status == 202
        # The figure8 workload is tiny: the job may already be done by
        # the time the submit response is serialised.
        assert doc["status"] in ("queued", "running", "done")
        job_id = doc["query_id"]
        done = _poll_until_terminal(server, job_id)
        assert done["status"] == "done"
        assert done["cell_count"] > 0
        assert done["stats"]["strategy"]

        # Cursor-walk every page and compare against the in-process
        # engine result encoded through the same codec.
        cells, offset = [], 0
        while offset is not None:
            __, page = _get(
                server, f"/v1/queries/{job_id}?offset={offset}&limit=2"
            )
            assert len(page["cells"]) <= 2
            cells.extend(page["cells"])
            offset = page["page"]["next_offset"]
        spec = parse_query(ql, service.engine.db.schema)
        exact, __ = service.engine.execute(spec)
        assert cells == codecs.encode_cells(exact)

    def test_submit_on_session_records_result(self, stack, ql):
        service, server = stack
        __, doc = _post(server, "/v1/sessions", {"ql": ql})
        session_id = doc["session_id"]
        __, doc = _post(server, "/v1/queries", {"session_id": session_id})
        done = _poll_until_terminal(server, doc["query_id"])
        assert done["status"] == "done"
        assert done["session_id"] == session_id
        __, described = _get(server, f"/v1/sessions/{session_id}")
        assert described["has_result"] is True
        assert described["result_cells"] == done["cell_count"]
        _delete(server, f"/v1/sessions/{session_id}")

    def test_cancel_inflight_query(self, stack, ql):
        """Deterministic in-flight cancel: the job blocks on the engine
        lock held by the test, the cancel lands over HTTP, and the job
        unwinds at its first checkpoint once the lock is released."""
        service, server = stack
        with service._engine_lock:
            __, doc = _post(server, "/v1/queries", {"ql": ql})
            job_id = doc["query_id"]
            status, doc = _post(server, f"/v1/queries/{job_id}/cancel", {})
            assert status == 200
            assert doc["cancelled"] is True
        done = _poll_until_terminal(server, job_id)
        assert done["status"] == "cancelled"
        assert done["error_type"] == "QueryCancelledError"

    def test_unknown_job_is_404(self, stack):
        __, server = stack
        for path in ("/v1/queries/nope", "/v1/queries/nope/cancel"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                if path.endswith("cancel"):
                    _post(server, path, {})
                else:
                    _get(server, path)
            assert excinfo.value.code == 404

    def test_bad_pagination_is_400(self, stack, ql):
        __, server = stack
        __, doc = _post(server, "/v1/queries", {"ql": ql})
        job_id = doc["query_id"]
        _poll_until_terminal(server, job_id)
        for params in ("offset=-1", "limit=0", "limit=x"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, f"/v1/queries/{job_id}?{params}")
            assert excinfo.value.code == 400

    def test_submit_needs_exactly_one_of_ql_or_session(self, stack, ql):
        __, server = stack
        for body in ({}, {"ql": ql, "session_id": "s1"}):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server, "/v1/queries", body)
            assert excinfo.value.code == 400


class TestStreaming:
    def test_progressive_frames_terminated_by_exact_final(self, stack, ql):
        service, server = stack
        frames = _stream_frames(server, {"ql": ql, "chunk_size": 1})
        assert len(frames) >= 3
        pre_final = [f for f in frames if not f["is_final"]]
        assert len(pre_final) >= 2
        assert frames[-1]["is_final"]
        fractions = [f["fraction"] for f in frames]
        assert fractions == sorted(fractions)
        # Non-final frames carry linear scale-up COUNT estimates.
        assert any(
            "estimated" in cell for f in pre_final for cell in f["cells"]
        )
        spec = parse_query(ql, service.engine.db.schema)
        exact, __ = service.engine.execute(spec)
        assert frames[-1]["cells"] == codecs.encode_cells(exact)

    def test_stream_on_session_caches_final(self, stack, ql):
        service, server = stack
        __, doc = _post(server, "/v1/sessions", {"ql": ql})
        session_id = doc["session_id"]
        frames = _stream_frames(
            server, {"session_id": session_id, "chunk_size": 2}
        )
        assert frames[-1]["is_final"]
        __, described = _get(server, f"/v1/sessions/{session_id}")
        assert described["has_result"] is True
        _delete(server, f"/v1/sessions/{session_id}")

    def test_deterministic_given_seed(self, stack, ql):
        __, server = stack
        a = _stream_frames(server, {"ql": ql, "chunk_size": 1, "seed": 3})
        b = _stream_frames(server, {"ql": ql, "chunk_size": 1, "seed": 3})
        assert a == b

    def test_stream_validates_body(self, stack, ql):
        __, server = stack
        for body in (
            {"ql": ql, "chunk_size": 0},
            {"ql": ql, "chunk_size": "x"},
            {"ql": ql, "seed": "x"},
            {"ql": ql, "timeout": -1},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server, "/v1/stream", body)
            assert excinfo.value.code == 400

    def test_client_disconnect_cancels_server_side_work(self, stack, ql):
        """An RST mid-stream must stop the scan, release the slot and be
        accounted as a cancel — without crashing the handler thread."""
        service, server = stack
        before = service.metrics["cancelled_total"]
        body = json.dumps({"ql": ql, "chunk_size": 1}).encode("utf-8")
        with service._engine_lock:
            # The stream admits, then blocks on the engine lock held
            # here — deterministically before the first frame.
            streams_before = service.metrics["streams_total"]
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            )
            sock.sendall(
                b"POST /v1/stream HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            deadline = time.monotonic() + 10.0
            while (
                service.metrics["streams_total"] == streams_before
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert service.metrics["streams_total"] == streams_before + 1
            # RST on close: the server's next write fails immediately.
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            sock.close()
        deadline = time.monotonic() + 10.0
        while (
            service.metrics["cancelled_total"] == before
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert service.metrics["cancelled_total"] > before
        assert service.inflight == 0
        # The server survived and still answers.
        status, __doc = _get(server, "/healthz")
        assert status == 200


class TestErrorMappingAndTelemetry:
    def test_unknown_path_is_404_with_route_list(self, stack):
        __, server = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/v2/nope")
        assert excinfo.value.code == 404
        assert "paths" in json.loads(excinfo.value.read())

    def test_method_not_allowed_is_405(self, stack):
        __, server = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/v1/stats", {})
        assert excinfo.value.code == 405

    def test_bad_json_body_is_400(self, stack):
        __, server = stack
        request = urllib.request.Request(
            server.url + "/v1/queries", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_oversized_body_is_rejected(self, stack):
        from repro.serve.app import MAX_BODY_BYTES

        __, server = stack
        request = urllib.request.Request(
            server.url + "/v1/queries",
            data=b"x" * (MAX_BODY_BYTES + 1),
            method="POST",
        )
        # The server answers 400 without draining the megabyte body and
        # closes the connection; depending on timing the client either
        # sees the 400 or hits the closed socket while still sending.
        with pytest.raises(urllib.error.URLError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        if isinstance(excinfo.value, urllib.error.HTTPError):
            assert excinfo.value.code == 400
        else:
            assert isinstance(
                excinfo.value.reason, (BrokenPipeError, ConnectionResetError)
            )
        # Whatever the client saw, the server survived.
        status, __doc = _get(server, "/healthz")
        assert status == 200

    def test_metrics_routes_served_from_same_port(self, stack):
        __, server = stack
        status, doc = _get(server, "/healthz")
        assert status == 200 and doc["status"] == "ok"
        status, doc = _get(server, "/varz")
        assert status == 200 and "counters" in doc
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        assert "solap_http_requests_total" in text
        assert "solap_http_request_seconds" in text
        assert "solap_http_stream_frames_total" in text
        assert "solap_service_requests_total" in text

    def test_traces_limit_contract_applies_on_serve_port(self, stack):
        __, server = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/debug/traces?limit=0")
        assert excinfo.value.code == 400

    def test_stats_endpoint_reflects_http_traffic(self, stack):
        __, server = stack
        status, doc = _get(server, "/v1/stats")
        assert status == 200
        assert doc["counters"]["requests_total"] >= 1
