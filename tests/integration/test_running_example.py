"""Integration: the paper's running transit example end-to-end (Q1, Q2, Q3)."""

import pytest

from repro import SOLAPEngine, Session
from repro.datagen import (
    TransitConfig,
    generate_transit,
    round_trip_spec,
    single_trip_spec,
)
from repro.events.expression import Comparison, Literal, PlaceholderField


@pytest.fixture(scope="module")
def db():
    return generate_transit(TransitConfig(n_cards=200, n_days=4, seed=41))


class TestQ1RoundTrips:
    def test_hot_pair_dominates(self, db):
        cuboid, __ = SOLAPEngine(db).execute(round_trip_spec(), "cb")
        top = cuboid.argmax()
        assert top is not None
        assert top[1] == ("Pentagon", "Wheaton")

    def test_global_dims_present(self, db):
        cuboid, __ = SOLAPEngine(db).execute(round_trip_spec(), "cb")
        fare_groups = {g[0] for g in cuboid.group_keys()}
        assert fare_groups <= {"student", "regular", "senior"}
        days = {g[1] for g in cuboid.group_keys()}
        assert len(days) == 4

    def test_figure2_like_tabulation(self, db):
        cuboid, __ = SOLAPEngine(db).execute(
            round_trip_spec(group_by_fare=False), "cb"
        )
        table = cuboid.tabulate(limit=5)
        assert "X(location@station)" in table
        assert "COUNT(*)" in table


class TestQ2FollowUpTrips:
    def test_q1_to_q2_session(self, db):
        engine = SOLAPEngine(db)
        session = Session(engine, round_trip_spec(), strategy="ii")
        cuboid, __ = session.run()
        __, hot_pair, __count = cuboid.argmax()
        session.slice_cell(hot_pair)
        session.append(
            "X",
            placeholder="x3",
            extra_predicate=Comparison(
                PlaceholderField("x3", "action"), "=", Literal("in")
            ),
        )
        session.append(
            "Z",
            attribute="location",
            level="station",
            placeholder="z1",
            extra_predicate=Comparison(
                PlaceholderField("z1", "action"), "=", Literal("out")
            ),
        )
        q2, __ = session.run()
        # Q2 is a 5-dim cuboid: 2 global + 3 pattern dims.
        assert q2.spec.n_dims == 5
        assert q2.spec.template.positions == ("X", "Y", "Y", "X", "X", "Z")
        # Every cell is anchored at the sliced hot pair.
        for __g, cell, __v in q2:
            assert cell[0] == hot_pair[0] and cell[1] == hot_pair[1]
        # CB agrees.
        cb, __ = SOLAPEngine(db).execute(session.spec, "cb")
        assert q2.to_dict() == cb.to_dict()

    def test_q2_rollup_z_to_district(self, db):
        engine = SOLAPEngine(db)
        session = Session(engine, round_trip_spec(), strategy="ii")
        cuboid, __ = session.run()
        __, hot_pair, __c = cuboid.argmax()
        session.slice_cell(hot_pair)
        session.append("X")
        session.append("Z", attribute="location", level="station")
        session.run()
        session.p_roll_up("Z")
        rolled, __ = session.run()
        districts = {cell[2] for __g, cell, __v in rolled}
        assert districts <= {"D10", "D20", "D30", "D40"}
        cb, __ = SOLAPEngine(db).execute(session.spec, "cb")
        assert rolled.to_dict() == cb.to_dict()


class TestQ3SingleTrips:
    def test_single_trip_counts_consistent(self, db):
        spec = single_trip_spec()
        cb, __ = SOLAPEngine(db).execute(spec, "cb")
        ii, __ = SOLAPEngine(db).execute(spec, "ii")
        assert cb.to_dict() == ii.to_dict()
        # Every passenger-day has at least one trip, so the total single
        # trip count is at least the number of sequences.
        engine = SOLAPEngine(db)
        groups = engine.sequence_groups(spec)
        assert cb.total() >= groups.total_sequences()

    def test_trips_are_directed_pairs(self, db):
        cuboid, __ = SOLAPEngine(db).execute(single_trip_spec(), "cb")
        for __g, (origin, destination), __v in cuboid:
            assert origin != destination or origin == destination  # both legal
        assert cuboid.count(("Pentagon", "Wheaton")) > 0
