"""Properties of the pattern matcher and the cell restrictions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CellRestriction, TemplateMatcher, build_sequence_groups
from repro.core.spec import PatternKind
from tests.property.conftest import (
    make_db,
    sequences_strategy,
    shape_strategy,
    template_from,
)


def single_sequences(db):
    groups = build_sequence_groups(db, None, [("seq", "seq")], [("ts", True)])
    return list(groups.single_group())


@settings(max_examples=100, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_substring_occurrences_are_subsequence_occurrences(sequences, shape):
    db = make_db(sequences)
    substring = TemplateMatcher(
        template_from(shape, PatternKind.SUBSTRING), db.schema
    )
    subsequence = TemplateMatcher(
        template_from(shape, PatternKind.SUBSEQUENCE), db.schema
    )
    for sequence in single_sequences(db):
        sub = {occ for occ in substring.iter_occurrences(sequence)}
        sup = {occ for occ in subsequence.iter_occurrences(sequence)}
        assert sub <= sup


@settings(max_examples=100, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_left_maximality_is_first_of_all_matched(sequences, shape):
    db = make_db(sequences)
    template = template_from(shape, PatternKind.SUBSTRING)
    left = TemplateMatcher(template, db.schema, CellRestriction.LEFT_MAXIMALITY)
    every = TemplateMatcher(template, db.schema, CellRestriction.ALL_MATCHED)
    for sequence in single_sequences(db):
        left_cells = left.assignments(sequence)
        all_cells = every.assignments(sequence)
        assert set(left_cells) == set(all_cells)
        for cell, contents in left_cells.items():
            assert len(contents) == 1
            assert contents[0] == all_cells[cell][0]  # the first occurrence
            assert len(all_cells[cell]) >= 1


@settings(max_examples=100, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_data_go_assigns_whole_sequence(sequences, shape):
    db = make_db(sequences)
    template = template_from(shape, PatternKind.SUBSTRING)
    matcher = TemplateMatcher(
        template, db.schema, CellRestriction.LEFT_MAXIMALITY_DATA
    )
    for sequence in single_sequences(db):
        for contents in matcher.assignments(sequence).values():
            assert contents == [tuple(sequence.rows)]


@settings(max_examples=100, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_occurrences_instantiate_template(sequences, shape):
    """Every reported occurrence satisfies symbol equality and the values
    really sit at the reported positions."""
    db = make_db(sequences)
    template = template_from(shape, PatternKind.SUBSEQUENCE)
    matcher = TemplateMatcher(template, db.schema)
    symbol_ids = template.symbol_ids()
    for sequence in single_sequences(db):
        symbols = sequence.symbols("symbol", "symbol")
        for values, indices in matcher.iter_occurrences(sequence):
            assert len(values) == len(indices) == template.length
            assert list(indices) == sorted(set(indices))
            for offset, index in enumerate(indices):
                assert symbols[index] == values[offset]
            # equal symbols bind equal values
            for i in range(len(values)):
                for j in range(i + 1, len(values)):
                    if symbol_ids[i] == symbol_ids[j]:
                        assert values[i] == values[j]


@settings(max_examples=100, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_contains_instantiation_consistent_with_enumeration(sequences, shape):
    db = make_db(sequences)
    template = template_from(shape, PatternKind.SUBSTRING)
    matcher = TemplateMatcher(template, db.schema)
    for sequence in single_sequences(db):
        listed = set(matcher.unique_instantiations(sequence))
        for values in listed:
            assert matcher.contains_instantiation(sequence, values)
        # a pattern over foreign symbols is never contained
        assert not matcher.contains_instantiation(
            sequence, tuple("z" for __ in range(template.length))
        )


@settings(max_examples=80, deadline=None)
@given(
    sequences=sequences_strategy,
    shape=shape_strategy,
    kind=st.sampled_from([PatternKind.SUBSTRING, PatternKind.SUBSEQUENCE]),
)
def test_group_level_occurrences_cover_symbol_level(sequences, shape, kind):
    """Every symbol-level occurrence maps up to a group-level occurrence
    when the template has no repeated symbols (the roll-up soundness
    argument)."""
    if len(set(shape)) != len(shape):
        return  # property only claimed for repeat-free templates
    db = make_db(sequences)
    fine = TemplateMatcher(template_from(shape, kind, "symbol"), db.schema)
    coarse = TemplateMatcher(template_from(shape, kind, "group"), db.schema)
    hierarchy = db.schema.hierarchy("symbol")
    for sequence in single_sequences(db):
        coarse_cells = {
            tuple(values) for values, __ in coarse.iter_occurrences(sequence)
        }
        for values, __ in fine.iter_occurrences(sequence):
            mapped = tuple(hierarchy.map_value(v, "group") for v in values)
            assert mapped in coarse_cells
