"""Properties of the reporting layer (OD matrices, diffs, insights)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SCuboid
from repro.reports import (
    concentration,
    diff_cuboids,
    fragmentation,
    od_matrix_from_cuboid,
    suggest_operations,
)
from tests.conftest import figure8_spec
from tests.property.conftest import make_schema

STATIONS = ("A", "B", "C", "D", "E")

cells_strategy = st.dictionaries(
    st.tuples(st.sampled_from(STATIONS), st.sampled_from(STATIONS)),
    st.integers(min_value=1, max_value=50),
    max_size=15,
)


def cuboid_of(cells) -> SCuboid:
    spec = figure8_spec(("X", "Y"))
    return SCuboid(
        spec, {((), cell): {"COUNT(*)": count} for cell, count in cells.items()}
    )


# --------------------------------------------------------------------------
# OD matrices
# --------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(cells=cells_strategy)
def test_od_matrix_preserves_totals(cells):
    cuboid = cuboid_of(cells)
    matrix = od_matrix_from_cuboid(cuboid)
    assert matrix.total() == cuboid.total()
    assert sum(matrix.outbound_totals().values()) == matrix.total()
    assert sum(matrix.inbound_totals().values()) == matrix.total()


@settings(max_examples=100, deadline=None)
@given(cells=cells_strategy)
def test_od_matrix_cellwise_equality(cells):
    cuboid = cuboid_of(cells)
    matrix = od_matrix_from_cuboid(cuboid)
    for (origin, destination), count in cells.items():
        assert matrix.count(origin, destination) == count


@settings(max_examples=60, deadline=None)
@given(cells=cells_strategy)
def test_od_matrix_busiest_pair_is_argmax(cells):
    if not cells:
        return
    cuboid = cuboid_of(cells)
    matrix = od_matrix_from_cuboid(cuboid)
    origin, destination, value = matrix.busiest_pair()
    assert value == max(cells.values())
    assert cells[(origin, destination)] == value


# --------------------------------------------------------------------------
# Diffs
# --------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(cells=cells_strategy)
def test_diff_with_self_is_empty(cells):
    cuboid = cuboid_of(cells)
    diff = diff_cuboids(cuboid, cuboid)
    assert diff.is_empty
    assert diff.unchanged == len(cells)
    assert diff.net_change() == 0


@settings(max_examples=100, deadline=None)
@given(a=cells_strategy, b=cells_strategy)
def test_diff_is_antisymmetric(a, b):
    forward = diff_cuboids(cuboid_of(a), cuboid_of(b))
    backward = diff_cuboids(cuboid_of(b), cuboid_of(a))
    assert forward.net_change() == -backward.net_change()
    assert set(forward.added) == set(backward.removed)
    assert set(forward.changed) == set(backward.changed)


@settings(max_examples=100, deadline=None)
@given(a=cells_strategy, b=cells_strategy)
def test_diff_partitions_cells(a, b):
    diff = diff_cuboids(cuboid_of(a), cuboid_of(b))
    accounted = (
        len(diff.added) + len(diff.changed) + diff.unchanged
    )
    assert accounted == len(b)
    assert len(diff.removed) + len(diff.changed) + diff.unchanged == len(a)


@settings(max_examples=60, deadline=None)
@given(a=cells_strategy, b=cells_strategy)
def test_net_change_equals_total_delta(a, b):
    diff = diff_cuboids(cuboid_of(a), cuboid_of(b))
    assert diff.net_change() == sum(b.values()) - sum(a.values())


# --------------------------------------------------------------------------
# Insights
# --------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(cells=cells_strategy)
def test_metrics_are_bounded(cells):
    cuboid = cuboid_of(cells)
    assert 0.0 <= concentration(cuboid) <= 1.0
    assert fragmentation(cuboid) >= 0.0
    if cells:
        assert fragmentation(cuboid) <= 1.0  # counts are >= 1 per cell


@settings(max_examples=60, deadline=None)
@given(cells=cells_strategy)
def test_suggestions_reference_real_arguments(cells):
    schema = make_schema()
    spec = figure8_spec(("X", "Y"))
    # rebind to the property schema's symbol attribute for level checks
    from repro.core.spec import PatternTemplate

    template = PatternTemplate.substring(
        ("X", "Y"), {"X": ("symbol", "symbol"), "Y": ("symbol", "symbol")}
    )
    cuboid = SCuboid(
        spec.with_template(template),
        {((), cell): {"COUNT(*)": count} for cell, count in cells.items()},
    )
    for insight in suggest_operations(cuboid, schema):
        assert 0.0 < insight.score <= 1.0
        if insight.operation == "slice_cell":
            assert ((), insight.argument) in cuboid.cells
        else:
            assert insight.argument in ("X", "Y")
