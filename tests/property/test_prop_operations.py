"""Properties of the S-OLAP operations and spec algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SOLAPEngine
from repro.core import operations as ops
from repro.core.spec import PatternKind
from tests.property.conftest import (
    ALPHABET,
    make_db,
    make_schema,
    sequences_strategy,
    shape_strategy,
    spec_for,
    template_from,
)


@settings(max_examples=80, deadline=None)
@given(shape=shape_strategy)
def test_append_then_de_tail_is_identity(shape):
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    grown = ops.append(spec, "N", "symbol", "symbol")
    assert ops.de_tail(grown) == spec


@settings(max_examples=80, deadline=None)
@given(shape=shape_strategy)
def test_prepend_then_de_head_is_identity_on_semantics(shape):
    """PREPEND renames nothing, but DE-HEAD can reorder symbol lists; the
    cache keys (signatures) must still match the original."""
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    grown = ops.prepend(spec, "N", "symbol", "symbol")
    back = ops.de_head(grown)
    assert back.template.signature() == spec.template.signature()
    assert back.cache_key() == spec.cache_key()


@settings(max_examples=80, deadline=None)
@given(shape=shape_strategy, symbol_index=st.integers(min_value=0, max_value=3))
def test_roll_up_drill_down_restores_level(shape, symbol_index):
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    schema = make_schema()
    symbols = spec.template.symbols
    symbol = symbols[symbol_index % len(symbols)].name
    rolled = ops.p_roll_up(spec, symbol, schema)
    restored = ops.p_drill_down(rolled, symbol, schema)
    assert restored.template.symbol(symbol).level == "symbol"


@settings(max_examples=80, deadline=None)
@given(shape=shape_strategy, value=st.sampled_from(ALPHABET))
def test_slice_then_unslice_is_identity(shape, value):
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    symbol = spec.template.symbols[0].name
    assert ops.unslice_pattern(ops.slice_pattern(spec, symbol, value), symbol) == spec


@settings(max_examples=40, deadline=None)
@given(
    sequences=sequences_strategy,
    shape=shape_strategy,
    value=st.sampled_from(ALPHABET),
)
def test_sliced_cuboid_is_subset_of_full(sequences, shape, value):
    """Slicing a pattern dimension selects exactly the matching cells of
    the unsliced cuboid."""
    db = make_db(sequences)
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    full, __ = SOLAPEngine(db).execute(spec, "cb")
    symbol = spec.template.symbols[0].name
    sliced_spec = ops.slice_pattern(spec, symbol, value)
    sliced, __ = SOLAPEngine(db).execute(sliced_spec, "cb")
    expected = {
        key: values
        for key, values in full.to_dict().items()
        if key[1][0] == value
    }
    assert sliced.to_dict() == expected


@settings(max_examples=40, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_de_tail_cuboid_from_scratch_vs_non_summarizable(sequences, shape):
    """DE-TAIL recomputes from base data; naive aggregation of the finer
    cuboid is generally wrong (non-summarizability), but prefix
    containment still holds: every populated fine cell implies a
    populated coarse cell."""
    if len(shape) < 2:
        return
    db = make_db(sequences)
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    fine, __ = SOLAPEngine(db).execute(spec, "cb")
    coarse_spec = ops.de_tail(spec)
    coarse, __ = SOLAPEngine(db).execute(coarse_spec, "cb")
    # aggregate fine counts by their cell-key projection onto the coarse dims
    coarse_dims = {s.name for s in coarse_spec.template.symbols}
    fine_symbols = [s.name for s in spec.template.symbols]
    keep = [i for i, name in enumerate(fine_symbols) if name in coarse_dims]
    aggregated = {}
    for (g, cell), values in fine.to_dict().items():
        projected = tuple(cell[i] for i in keep)
        aggregated[projected] = aggregated.get(projected, 0) + values["COUNT(*)"]
    # A sequence counted in a fine cell is always counted in the
    # corresponding coarse cell (prefix containment) — the only direction
    # that survives non-summarizability.
    for (g, cell), values in fine.to_dict().items():
        projected = tuple(cell[i] for i in keep)
        assert coarse.count(projected, g) >= 1


@settings(max_examples=60, deadline=None)
@given(shape=shape_strategy)
def test_operations_never_mutate_input(shape):
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    key_before = spec.cache_key()
    ops.append(spec, "N", "symbol", "symbol")
    ops.prepend(spec, "M", "symbol", "symbol")
    ops.slice_pattern(spec, spec.template.symbols[0].name, "a")
    ops.p_roll_up(spec, spec.template.symbols[0].name, make_schema())
    assert spec.cache_key() == key_before
