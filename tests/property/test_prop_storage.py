"""Property: segment-backed execution is invisible.

A cuboid computed over an mmap-attached segment store must be
bit-identical to one computed over the in-memory :class:`EventDatabase`
it was written from — for every template, both strategies, all three
cell restrictions, every scan backend, and after incremental appends.
Segment stores assign dictionary codes in their own (store) order, so
these tests are also the proof that code-assignment order never leaks
into results.

The process-backend test honours ``SOLAP_STORAGE_START_METHOD``
(``fork``/``spawn``) so CI can exercise both worker start paths.
"""

import os
import random
import tempfile
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CellRestriction, SOLAPEngine
from repro.service import QueryService, ServiceConfig
from repro.storage import StorageManager, attach_store
from tests.property.conftest import (
    ALPHABET,
    make_db,
    sequences_strategy,
    spec_for,
    template_from,
    template_strategy,
)
from repro.core.spec import PatternKind

RESTRICTIONS = st.sampled_from(
    [
        CellRestriction.LEFT_MAXIMALITY,
        CellRestriction.LEFT_MAXIMALITY_DATA,
        CellRestriction.ALL_MATCHED,
    ]
)

CLUSTER_BY = (("seq", "seq"),)
SEQUENCE_BY = (("ts", True),)


def _run(db, spec, strategy):
    cuboid, stats = SOLAPEngine(db).execute(spec, strategy)
    return cuboid, stats


def _write_store(db, root):
    return StorageManager.write(
        db, root, cluster_by=CLUSTER_BY, sequence_by=SEQUENCE_BY
    )


@settings(max_examples=80, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
)
def test_segment_cb_equals_memory_cb(sequences, template, restriction):
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    memory, memory_stats = _run(db, spec, "cb")
    assert memory_stats.extra.get("matcher") == "compiled"
    with tempfile.TemporaryDirectory() as tmp:
        manager = _write_store(db, Path(tmp) / "store")
        try:
            segment, segment_stats = _run(manager.attach(), spec, "cb")
        finally:
            manager.close()
    assert segment_stats.extra.get("matcher") == "compiled"
    assert segment.to_dict() == memory.to_dict()


@settings(max_examples=50, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
)
def test_segment_ii_equals_memory_ii(sequences, template, restriction):
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    memory, __ = _run(db, spec, "ii")
    with tempfile.TemporaryDirectory() as tmp:
        manager = _write_store(db, Path(tmp) / "store")
        try:
            segment, __ = _run(manager.attach(), spec, "ii")
        finally:
            manager.close()
    assert segment.to_dict() == memory.to_dict()


@settings(max_examples=50, deadline=None)
@given(
    sequences=sequences_strategy,
    appended=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
)
def test_segment_append_equals_memory(sequences, appended, template, restriction):
    """After an incremental append the multi-segment store still matches
    an in-memory database rebuilt from the full event stream."""
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    with tempfile.TemporaryDirectory() as tmp:
        manager = _write_store(db, Path(tmp) / "store")
        try:
            offset = len(sequences)
            new_events = [
                {"seq": offset + seq_id, "ts": position, "symbol": symbol}
                for seq_id, symbols in enumerate(appended)
                for position, symbol in enumerate(symbols)
            ]
            manager.append_events(new_events)
            manager.verify()
            full = make_db(sequences)
            for event in new_events:
                full.append(event)
            memory, __ = _run(full, spec, "cb")
            segment, __ = _run(manager.attach(), spec, "cb")
        finally:
            manager.close()
    assert segment.to_dict() == memory.to_dict()


def _backend_dataset():
    rng = random.Random(13)
    return [
        [rng.choice(ALPHABET) for __ in range(rng.randint(3, 10))]
        for __ in range(40)
    ]


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("level", ["symbol", "group"])
def test_segment_scan_backends_equal_memory(backend, level, tmp_path):
    """Service scans over an attached store match in-memory execution on
    every backend.  The process backend ships the database to workers by
    *path* (``SegmentBackedDatabase.__reduce__``), so each worker mmaps
    the store instead of unpickling columns — this is the test that the
    O(1) attach path is semantics-preserving."""
    sequences = _backend_dataset()
    template = template_from((0, 1), PatternKind.SUBSTRING, level)
    spec = spec_for(template)
    db = make_db(sequences)
    manager = _write_store(db, tmp_path / "store")
    config = ServiceConfig(
        max_workers=2,
        executor_backend=backend,
        parallel_scan_threshold=1,
    )
    if backend == "process":
        method = os.environ.get("SOLAP_STORAGE_START_METHOD")
        if method:
            config = replace(config, process_start_method=method)
    svc = QueryService(manager.attach(), config)
    try:
        cuboid, __ = svc.execute(spec, "cb")
        snapshot = svc.metrics.snapshot()
    finally:
        svc.close()
        manager.close()
    memory, __ = _run(db, spec, "cb")
    assert cuboid.to_dict() == memory.to_dict()
    if backend != "serial":
        assert snapshot["worker_init"]["count"] >= 1


def test_attach_store_memoised_per_process(tmp_path):
    """``attach_store`` returns one shared database per (path, manifest),
    so N workers in one interpreter share a single mmap attachment."""
    db = make_db(_backend_dataset())
    root = tmp_path / "store"
    _write_store(db, root).close()
    first = attach_store(str(root))
    second = attach_store(str(root))
    assert first is second
