"""Property: the counter-based and inverted-index strategies always agree.

This is the central correctness invariant of the paper's prototype: both
S-cuboid construction approaches are implementations of the same semantics
(Section 4.2), so any divergence is a bug in one of them.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CellRestriction, SOLAPEngine
from tests.property.conftest import (
    make_db,
    sequences_strategy,
    shape_strategy,
    spec_for,
    template_from,
    template_strategy,
)

# shape_strategy and template_from are reused by the wildcard variant below.

RESTRICTIONS = st.sampled_from(
    [
        CellRestriction.LEFT_MAXIMALITY,
        CellRestriction.LEFT_MAXIMALITY_DATA,
        CellRestriction.ALL_MATCHED,
    ]
)


@settings(max_examples=120, deadline=None)
@given(sequences=sequences_strategy, template=template_strategy)
def test_cb_equals_ii(sequences, template):
    db = make_db(sequences)
    spec = spec_for(template)
    cb, __ = SOLAPEngine(db).execute(spec, "cb")
    ii, __ = SOLAPEngine(db).execute(spec, "ii")
    assert cb.to_dict() == ii.to_dict()


@settings(max_examples=60, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
)
def test_cb_equals_ii_under_restrictions(sequences, template, restriction):
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    cb, __ = SOLAPEngine(db).execute(spec, "cb")
    ii, __ = SOLAPEngine(db).execute(spec, "ii")
    assert cb.to_dict() == ii.to_dict()


@settings(max_examples=60, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_warm_engine_matches_cold_cb(sequences, shape):
    """An engine that has answered related queries (and so reuses cached
    indices) must still agree with a cold CB engine."""
    from repro.core.spec import PatternKind

    db = make_db(sequences)
    template = template_from(shape, PatternKind.SUBSTRING)
    spec = spec_for(template)
    warm = SOLAPEngine(db)
    # Warm up with every prefix template first.
    from repro.index.inverted import prefix_template

    for length in range(1, template.length + 1):
        warm.execute(spec.with_template(prefix_template(template, length)), "ii")
    warm_result, __ = warm.execute(spec, "ii")
    cold_result, __ = SOLAPEngine(db).execute(spec, "cb")
    assert warm_result.to_dict() == cold_result.to_dict()


@settings(max_examples=60, deadline=None)
@given(
    sequences=sequences_strategy,
    shape=shape_strategy,
    wildcard_at=st.integers(min_value=0, max_value=4),
)
def test_cb_equals_ii_with_wildcards(sequences, shape, wildcard_at):
    """Inserting an ANY position anywhere keeps the strategies in lockstep."""
    from repro.core.spec import PatternKind, PatternSymbol, PatternTemplate

    base = template_from(shape, PatternKind.SUBSTRING)
    position = wildcard_at % (base.length + 1)
    positions = (
        base.positions[:position] + ("_w1",) + base.positions[position:]
    )
    order = []
    for name in positions:
        if name not in order:
            order.append(name)
    by_name = {s.name: s for s in base.symbols}
    by_name["_w1"] = PatternSymbol.any("_w1")
    template = PatternTemplate(
        kind=base.kind,
        positions=positions,
        symbols=tuple(by_name[name] for name in order),
    )
    db = make_db(sequences)
    spec = spec_for(template)
    cb, __ = SOLAPEngine(db).execute(spec, "cb")
    ii, __ = SOLAPEngine(db).execute(spec, "ii")
    assert cb.to_dict() == ii.to_dict()


@settings(max_examples=50, deadline=None)
@given(
    sequences=sequences_strategy,
    shape=shape_strategy,
    filter_value=st.sampled_from(("a", "b", "c")),
)
def test_interleaved_pipelines_stay_isolated(sequences, shape, filter_value):
    """One engine serving two pipelines (with/without WHERE) must answer
    both correctly in any interleaving — indices must not leak."""
    from dataclasses import replace

    from repro import Comparison, EventField, Literal
    from repro.core.spec import PatternKind

    db = make_db(sequences)
    engine = SOLAPEngine(db)
    spec_all = spec_for(template_from(shape, PatternKind.SUBSTRING))
    spec_filtered = replace(
        spec_all,
        where=Comparison(EventField("symbol"), "!=", Literal(filter_value)),
    )
    for spec in (spec_filtered, spec_all, spec_filtered, spec_all):
        warm, __ = engine.execute(spec, "ii")
        cold, __ = SOLAPEngine(db).execute(spec, "cb")
        assert warm.to_dict() == cold.to_dict()


@settings(max_examples=50, deadline=None)
@given(sequences=sequences_strategy, template=template_strategy)
def test_counts_bounded_by_sequences(sequences, template):
    """Under left-maximality, a cell's count never exceeds the number of
    sequences (each sequence contributes at most one assignment)."""
    db = make_db(sequences)
    cuboid, __ = SOLAPEngine(db).execute(spec_for(template), "cb")
    for __g, __c, values in cuboid:
        assert 1 <= values["COUNT(*)"] <= len(sequences)
