"""Property: every execution backend yields bit-identical S-cuboids.

The serial, thread and process backends must agree with the plain serial
CB scan *exactly* — including float SUM/AVG cells, where addition order
matters — because the scanner folds per-sequence assignments in canonical
order no matter where the matching ran (see ``repro.service.parallel``).

The data is clickstream-flavoured: a fixed, seeded mini-Gazelle session
set (raw-page → page-category hierarchy) re-recorded with an irregular
float ``dwell`` measure so that any change in float addition order is
observable.  The database is fixed (only templates, levels, shard counts
and aggregates vary per example) so one process pool, bound to that
database, can serve every example.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AggregateSpec,
    CuboidSpec,
    Dimension,
    EventDatabase,
    Measure,
    PatternTemplate,
    Schema,
    build_sequence_groups,
)
from repro.core.counter_based import counter_based_cuboid
from repro.core.spec import AggregateScope, PatternKind
from repro.core.stats import QueryStats
from repro.datagen.clickstream import ClickstreamConfig, generate_database
from repro.service.parallel import (
    ParallelCBScanner,
    ProcessExecutorBackend,
    SerialExecutorBackend,
    ThreadExecutorBackend,
)
from tests.property.conftest import SYMBOL_NAMES, shape_strategy


def _make_db() -> EventDatabase:
    """A small fixed clickstream with a float dwell-time measure."""
    source = generate_database(
        ClickstreamConfig(n_sessions=60, seed=7, crawler_fraction=0.0)
    )
    page_hierarchy = source.schema.dimension("page").hierarchy
    schema = Schema(
        dimensions=[
            Dimension("session-id"),
            Dimension("request-time"),
            Dimension("page", page_hierarchy),
        ],
        measures=[Measure("dwell")],
    )
    db = EventDatabase(schema)
    for index, event in enumerate(source):
        # Irregular magnitudes make float addition order observable.
        db.append(
            {
                "session-id": event["session-id"],
                "request-time": event["request-time"],
                "page": event["page"],
                "dwell": (index % 17 + 1) * 0.37 + index * 0.0010000001,
            }
        )
    return db


_DB = _make_db()

FLOAT_AGGREGATES = (
    AggregateSpec("COUNT"),
    AggregateSpec("SUM", "dwell", AggregateScope.MATCHED),
    AggregateSpec("AVG", "dwell", AggregateScope.SEQUENCE),
)


def _spec(shape, kind, level, with_floats) -> CuboidSpec:
    positions = tuple(SYMBOL_NAMES[i] for i in shape)
    bindings = {
        SYMBOL_NAMES[i]: ("page", level) for i in sorted(set(shape))
    }
    return CuboidSpec(
        template=PatternTemplate.build(kind, positions, bindings),
        cluster_by=(("session-id", "session-id"),),
        sequence_by=(("request-time", True),),
        aggregates=FLOAT_AGGREGATES if with_floats else (AggregateSpec("COUNT"),),
    )


@pytest.fixture(scope="module")
def backends():
    backs = [
        SerialExecutorBackend(),
        ThreadExecutorBackend(3),
        ProcessExecutorBackend(_DB, 2),
    ]
    backs[-1].warm_up()
    yield backs
    for back in backs:
        back.shutdown()


@settings(max_examples=25, deadline=None)
@given(
    shape=shape_strategy,
    kind=st.sampled_from([PatternKind.SUBSTRING, PatternKind.SUBSEQUENCE]),
    level=st.sampled_from(["raw-page", "page-category"]),
    shards=st.integers(min_value=2, max_value=5),
    with_floats=st.booleans(),
)
def test_backends_bit_identical(backends, shape, kind, level, shards, with_floats):
    spec = _spec(shape, kind, level, with_floats)
    groups = build_sequence_groups(
        _DB, spec.where, spec.cluster_by, spec.sequence_by, spec.group_by
    )
    serial = counter_based_cuboid(_DB, groups, spec, QueryStats())
    for backend in backends:
        scanner = ParallelCBScanner(backend, shards=shards, threshold=0)
        stats = QueryStats()
        cuboid = scanner(_DB, groups, spec, stats)
        assert cuboid is not None
        # dict equality on cells is bit-identity for the float aggregates
        assert cuboid.cells == serial.cells, backend.name
        assert stats.extra["scan_backend"] == backend.name
        assert stats.extra["parallel_shards"] >= 1
