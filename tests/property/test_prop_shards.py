"""Property: scatter-gather shard execution is invisible.

An S-cuboid merged from N per-shard partials must be bit-identical to the
single-shard serial build — for every template, both kernel strategies,
all three cell restrictions, shard counts 1/2/4, and every execution
backend.  AVG rides along as a (sum, count) pair, so the datasets here
use integer measures, where the merge's float re-association is exact.

The backend matrix honours ``SOLAP_SHARDS`` and
``SOLAP_SHARD_START_METHOD`` so CI can sweep fan-outs and both process
start paths.
"""

import os
import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CellRestriction,
    CuboidSpec,
    Dimension,
    EventDatabase,
    Schema,
    SOLAPEngine,
)
from repro.core.spec import AggregateSpec, PatternKind
from repro.events.schema import Measure
from repro.service import QueryService, ServiceConfig
from repro.shard import ScatterGatherCoordinator
from tests.property.conftest import (
    ALPHABET,
    GROUP_OF,
    make_db,
    sequences_strategy,
    spec_for,
    template_from,
    template_strategy,
)

RESTRICTIONS = st.sampled_from(
    [
        CellRestriction.LEFT_MAXIMALITY,
        CellRestriction.LEFT_MAXIMALITY_DATA,
        CellRestriction.ALL_MATCHED,
    ]
)

SHARD_COUNTS = st.sampled_from([1, 2, 4])


def _serial(db, spec, strategy):
    cuboid, stats = SOLAPEngine(db, use_repository=False).execute(spec, strategy)
    return cuboid, stats


def _sharded(db, spec, strategy, shards):
    engine = SOLAPEngine(db, use_repository=False)
    engine.scatter_gather = ScatterGatherCoordinator(shards, min_sequences=1)
    cuboid, stats = engine.execute(spec, strategy)
    assert stats.extra.get("shard_fanout") is not None, (
        "scatter-gather declined; the property was not exercised"
    )
    return cuboid, stats


@settings(max_examples=60, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
    shards=SHARD_COUNTS,
)
def test_sharded_cb_equals_serial_cb(sequences, template, restriction, shards):
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    serial, serial_stats = _serial(db, spec, "cb")
    merged, merged_stats = _sharded(db, spec, "cb", shards)
    assert merged.to_dict() == serial.to_dict()
    # zero work-counter drift: every selected sequence scanned exactly once
    assert merged_stats.sequences_scanned == serial_stats.sequences_scanned


@settings(max_examples=40, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
    shards=SHARD_COUNTS,
)
def test_sharded_ii_equals_serial_ii(sequences, template, restriction, shards):
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    serial, __ = _serial(db, spec, "ii")
    merged, __ = _sharded(db, spec, "ii", shards)
    assert merged.to_dict() == serial.to_dict()


# ---------------------------------------------------------------------------
# Aggregates over a measure (the conftest schema has none)
# ---------------------------------------------------------------------------

def _measure_schema() -> Schema:
    return Schema(
        [Dimension("seq"), Dimension("ts"), Dimension("symbol")],
        [Measure("amount")],
    )


def _measure_db(sequences) -> EventDatabase:
    db = EventDatabase(_measure_schema())
    for seq_id, symbols in enumerate(sequences):
        for position, (symbol, amount) in enumerate(symbols):
            db.append(
                {"seq": seq_id, "ts": position, "symbol": symbol, "amount": amount}
            )
    return db


measured_sequences_strategy = st.lists(
    st.lists(
        st.tuples(st.sampled_from(ALPHABET), st.integers(0, 100)),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=6,
)

ALL_AGGREGATES = (
    AggregateSpec("COUNT", None),
    AggregateSpec("SUM", "amount"),
    AggregateSpec("AVG", "amount"),
    AggregateSpec("MIN", "amount"),
    AggregateSpec("MAX", "amount"),
)


@settings(max_examples=60, deadline=None)
@given(
    sequences=measured_sequences_strategy,
    restriction=RESTRICTIONS,
    shards=SHARD_COUNTS,
    strategy=st.sampled_from(["cb", "ii"]),
)
def test_sharded_aggregates_equal_serial(sequences, restriction, shards, strategy):
    """All five aggregate functions survive the merge — AVG through its
    (sum, count) transport pair — over integer measures, where the
    partial-sum re-association is exact."""
    db = _measure_db(sequences)
    template = template_from((0, 1), PatternKind.SUBSEQUENCE, "symbol")
    spec = replace(
        spec_for(template), restriction=restriction, aggregates=ALL_AGGREGATES
    )
    serial, __ = _serial(db, spec, strategy)
    merged, __ = _sharded(db, spec, strategy, shards)
    assert merged.to_dict() == serial.to_dict()


# ---------------------------------------------------------------------------
# Backend matrix (deterministic dataset; env-swept by the shard-smoke job)
# ---------------------------------------------------------------------------

def _backend_dataset():
    rng = random.Random(13)
    return [
        [rng.choice(ALPHABET) for __ in range(rng.randint(3, 10))]
        for __ in range(40)
    ]


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("strategy", ["cb", "ii"])
def test_shard_backends_equal_serial(backend, strategy):
    """Full service wiring: ``ServiceConfig(shards=N)`` on every executor
    backend produces the serial result, scans each sequence exactly once,
    and surfaces its fan-out in ``stats.extra``."""
    shards = int(os.environ.get("SOLAP_SHARDS", "2"))
    sequences = _backend_dataset()
    template = template_from((0, 1), PatternKind.SUBSTRING, "symbol")
    spec = spec_for(template)
    db = make_db(sequences)
    serial, serial_stats = _serial(db, spec, strategy)
    config = ServiceConfig(
        max_workers=2,
        executor_backend=backend,
        shards=shards,
        parallel_scan_threshold=1,
    )
    if backend == "process":
        method = os.environ.get("SOLAP_SHARD_START_METHOD")
        if method:
            config = replace(config, process_start_method=method)
    svc = QueryService(SOLAPEngine(db, use_repository=False), config)
    try:
        cuboid, stats = svc.execute(spec, strategy)
    finally:
        svc.close()
    assert cuboid.to_dict() == serial.to_dict()
    assert stats.extra.get("shard_fanout") == min(shards, len(sequences))
    assert stats.extra.get("scan_backend") == backend
    assert stats.sequences_scanned == serial_stats.sequences_scanned


def test_group_level_template_survives_sharding():
    """Hierarchy-level matching (symbols rolled up to groups) is a
    per-sequence concern and must not change under partitioning."""
    sequences = _backend_dataset()
    db = make_db(sequences)
    template = template_from((0, 0, 1), PatternKind.SUBSEQUENCE, "group")
    spec = spec_for(template)
    serial, __ = _serial(db, spec, "cb")
    merged, __ = _sharded(db, spec, "cb", 4)
    assert merged.to_dict() == serial.to_dict()
    assert set(GROUP_OF.values()) >= {
        value for key in merged.cells for value in key[1]
    }


def test_holistic_aggregate_falls_back_to_single_shard(monkeypatch):
    """A NotMergeableError from the transport rewrite must make the
    coordinator decline, not fail the query."""
    from repro.errors import NotMergeableError
    from repro.shard import coordinator as coordinator_module

    def raising_transport_spec(spec):
        raise NotMergeableError("MEDIAN(m)")

    monkeypatch.setattr(
        coordinator_module, "transport_spec", raising_transport_spec
    )
    db = make_db(_backend_dataset())
    template = template_from((0, 1), PatternKind.SUBSTRING, "symbol")
    spec = spec_for(template)
    serial, __ = _serial(db, spec, "cb")
    engine = SOLAPEngine(db, use_repository=False)
    engine.scatter_gather = ScatterGatherCoordinator(4, min_sequences=1)
    cuboid, stats = engine.execute(spec, "cb")
    assert cuboid.to_dict() == serial.to_dict()
    assert "shard_fanout" not in stats.extra  # single-shard path answered
