"""Properties of the query language round-trip, the lattice order, and the
data-generation primitives."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import spec_coarser_or_equal
from repro.core import operations as ops
from repro.core.spec import PatternKind
from repro.datagen.zipf import ZipfDistribution, sample_poisson, zipf_partition_sizes
from repro.ql import format_spec, parse_query
from tests.property.conftest import (
    ALPHABET,
    make_schema,
    shape_strategy,
    spec_for,
    template_from,
)


# --------------------------------------------------------------------------
# Query-language round trip
# --------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    shape=shape_strategy,
    kind=st.sampled_from([PatternKind.SUBSTRING, PatternKind.SUBSEQUENCE]),
    level=st.sampled_from(["symbol", "group"]),
)
def test_format_parse_roundtrip(shape, kind, level):
    spec = spec_for(template_from(shape, kind, level))
    assert parse_query(format_spec(spec)) == spec


@settings(max_examples=60, deadline=None)
@given(shape=shape_strategy, value=st.sampled_from(ALPHABET))
def test_roundtrip_with_slices_and_constraints(shape, value):
    schema = make_schema()
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    symbol = spec.template.symbols[0].name
    sliced = ops.slice_pattern(spec, symbol, value)
    assert parse_query(format_spec(sliced)) == sliced
    drilled = ops.p_drill_down(
        ops.slice_pattern(ops.p_roll_up(spec, symbol, schema), symbol, "G1"),
        symbol,
        schema,
    )
    assert parse_query(format_spec(drilled)) == drilled


# --------------------------------------------------------------------------
# Lattice partial order
# --------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(shape=shape_strategy)
def test_partial_order_reflexive(shape):
    schema = make_schema()
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    assert spec_coarser_or_equal(schema, spec, spec)


@settings(max_examples=60, deadline=None)
@given(
    a=shape_strategy,
    b=shape_strategy,
    c=shape_strategy,
)
def test_partial_order_transitive(a, b, c):
    schema = make_schema()
    specs = [
        spec_for(template_from(shape, PatternKind.SUBSTRING)) for shape in (a, b, c)
    ]
    ab = spec_coarser_or_equal(schema, specs[0], specs[1])
    bc = spec_coarser_or_equal(schema, specs[1], specs[2])
    if ab and bc:
        assert spec_coarser_or_equal(schema, specs[0], specs[2])


@settings(max_examples=60, deadline=None)
@given(shape=shape_strategy)
def test_de_tail_always_coarser(shape):
    if len(shape) < 2:
        return
    schema = make_schema()
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    assert spec_coarser_or_equal(schema, ops.de_tail(spec), spec)
    assert spec_coarser_or_equal(schema, ops.de_head(spec), spec)


@settings(max_examples=60, deadline=None)
@given(shape=shape_strategy)
def test_p_roll_up_always_coarser(shape):
    schema = make_schema()
    spec = spec_for(template_from(shape, PatternKind.SUBSTRING))
    symbol = spec.template.symbols[0].name
    rolled = ops.p_roll_up(spec, symbol, schema)
    assert spec_coarser_or_equal(schema, rolled, spec)
    assert not spec_coarser_or_equal(schema, spec, rolled)


# --------------------------------------------------------------------------
# Data generation primitives
# --------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    theta=st.floats(min_value=0.0, max_value=2.0),
)
def test_zipf_is_distribution(n, theta):
    dist = ZipfDistribution(n, theta)
    assert abs(sum(dist.probabilities) - 1.0) < 1e-9
    assert all(p > 0 for p in dist.probabilities)
    assert all(
        dist.probabilities[i] >= dist.probabilities[i + 1] for i in range(n - 1)
    )


@settings(max_examples=60, deadline=None)
@given(
    total=st.integers(min_value=1, max_value=500),
    groups=st.integers(min_value=1, max_value=50),
    theta=st.floats(min_value=0.0, max_value=2.0),
)
def test_partition_sizes_are_a_partition(total, groups, theta):
    if total < groups:
        return
    sizes = zipf_partition_sizes(total, groups, theta)
    assert sum(sizes) == total
    assert len(sizes) == groups
    assert all(size >= 1 for size in sizes)


@settings(max_examples=40, deadline=None)
@given(
    mean=st.floats(min_value=0.1, max_value=80.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_poisson_non_negative(mean, seed):
    value = sample_poisson(mean, random.Random(seed))
    assert value >= 0
