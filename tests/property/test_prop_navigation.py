"""Property: random navigation walks keep both strategies in lockstep.

A session applies a random sequence of S-OLAP operations; after every
step the warm inverted-index engine (reusing all cached indices and
cuboids) must agree cell-for-cell with a cold counter-based engine.
This is the strongest end-to-end invariant: it exercises APPEND/PREPEND
joins, DE-TAIL/DE-HEAD cache hits, roll-up merges, drill-down
refinements and slicing in arbitrary interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SOLAPEngine
from repro.core import operations as ops
from repro.errors import OperationError
from tests.property.conftest import (
    ALPHABET,
    make_db,
    sequences_strategy,
    spec_for,
    template_from,
)
from repro.core.spec import PatternKind

#: operation codes the walk draws from
OPS = (
    "append_new",
    "append_repeat",
    "prepend_new",
    "de_tail",
    "de_head",
    "roll_up",
    "drill_down",
    "slice",
    "unslice",
    "append_wildcard",
)

_FRESH = iter(f"N{i}" for i in range(10_000))


def apply_op(spec, code, value, schema):
    """Apply one operation; returns the (possibly unchanged) spec."""
    symbols = spec.template.cell_symbols
    target = symbols[value % len(symbols)].name if symbols else None
    try:
        if code == "append_new":
            return ops.append(spec, next(_FRESH), "symbol", "symbol")
        if code == "append_repeat" and target is not None:
            return ops.append(spec, target)
        if code == "prepend_new":
            return ops.prepend(spec, next(_FRESH), "symbol", "symbol")
        if code == "de_tail":
            return ops.de_tail(spec)
        if code == "de_head":
            return ops.de_head(spec)
        if code == "roll_up" and target is not None:
            return ops.p_roll_up(spec, target, schema)
        if code == "drill_down" and target is not None:
            return ops.p_drill_down(spec, target, schema)
        if code == "slice" and target is not None:
            return ops.slice_pattern(spec, target, ALPHABET[value % len(ALPHABET)])
        if code == "unslice" and target is not None:
            return ops.unslice_pattern(spec, target)
        if code == "append_wildcard":
            return ops.append_wildcard(spec)
    except OperationError:
        return spec  # inapplicable op (top of hierarchy, length-1, ...)
    return spec


@settings(max_examples=25, deadline=None)
@given(
    sequences=sequences_strategy,
    walk=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(min_value=0, max_value=11)),
        min_size=1,
        max_size=6,
    ),
)
def test_random_walk_cb_equals_warm_ii(sequences, walk):
    db = make_db(sequences)
    warm = SOLAPEngine(db)
    spec = spec_for(template_from((0, 1), PatternKind.SUBSTRING))
    for code, value in walk:
        spec = apply_op(spec, code, value, db.schema)
        if spec.template.length > 4:
            spec = ops.de_tail(spec)  # keep joins tractable
        ii, __ = warm.execute(spec, "ii")
        cb, __ = SOLAPEngine(db).execute(spec, "cb")
        assert ii.to_dict() == cb.to_dict(), (code, spec.template.positions)


@settings(max_examples=20, deadline=None)
@given(
    sequences=sequences_strategy,
    walk=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(min_value=0, max_value=11)),
        min_size=1,
        max_size=5,
    ),
    min_support=st.integers(min_value=1, max_value=4),
)
def test_random_walk_with_iceberg(sequences, walk, min_support):
    """The HAVING threshold composes with arbitrary navigation."""
    from dataclasses import replace

    db = make_db(sequences)
    engine = SOLAPEngine(db)
    spec = spec_for(template_from((0, 1), PatternKind.SUBSTRING))
    for code, value in walk:
        spec = apply_op(spec, code, value, db.schema)
        if spec.template.length > 3:
            spec = ops.de_tail(spec)
        iceberg_spec = replace(spec, min_support=min_support)
        iceberg, __ = engine.execute(iceberg_spec, "ii")
        full, __ = SOLAPEngine(db).execute(spec, "cb")
        expected = {
            key: values
            for key, values in full.to_dict().items()
            if values["COUNT(*)"] >= min_support
        }
        assert iceberg.to_dict() == expected, code
