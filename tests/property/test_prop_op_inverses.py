"""The S-OLAP navigation ops as inverse pairs, and derivation soundness.

Complements :mod:`tests.property.test_prop_operations` (which covers
APPEND/DE-TAIL, PREPEND/DE-HEAD, P-ROLL-UP/P-DRILL-DOWN and pattern
slice/unslice) with the *global*-dimension pairs, and checks the
semantic-cache invariant on random data: any answer the
:class:`~repro.optimizer.semantic_cache.DerivationPlanner` derives from
a cached cuboid is bit-identical to computing the query cold.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import SOLAPEngine
from repro.core import operations as ops
from repro.core.spec import CellRestriction, PatternKind
from tests.property.conftest import (
    ALPHABET,
    make_db,
    make_schema,
    sequences_strategy,
    shape_strategy,
    spec_for,
    template_from,
)


def grouped_spec(shape, restriction=CellRestriction.LEFT_MAXIMALITY):
    """A spec with a hierarchy-bearing global (group-by) dimension."""
    return replace(
        spec_for(template_from(shape, PatternKind.SUBSTRING)),
        group_by=(("symbol", "symbol"),),
        restriction=restriction,
    )


@settings(max_examples=80, deadline=None)
@given(shape=shape_strategy)
def test_roll_up_global_then_drill_down_is_identity(shape):
    spec = grouped_spec(shape)
    schema = make_schema()
    rolled = ops.roll_up_global(spec, "symbol", schema)
    assert rolled.group_by == (("symbol", "group"),)
    restored = ops.drill_down_global(rolled, "symbol", schema)
    assert restored == spec
    assert restored.cache_key() == spec.cache_key()


@settings(max_examples=80, deadline=None)
@given(shape=shape_strategy, value=st.sampled_from(ALPHABET))
def test_slice_global_then_unslice_is_identity(shape, value):
    spec = grouped_spec(shape)
    sliced = ops.slice_global(spec, "symbol", value)
    assert sliced.global_slice
    assert ops.unslice_global(sliced, "symbol") == spec


@settings(max_examples=80, deadline=None)
@given(
    shape=shape_strategy,
    values=st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=3, unique=True),
)
def test_dice_global_then_unslice_is_identity(shape, values):
    spec = grouped_spec(shape)
    diced = ops.dice_global(spec, "symbol", tuple(values))
    assert ops.unslice_global(diced, "symbol") == spec


@settings(max_examples=40, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_derived_global_roll_up_matches_cold(sequences, shape):
    """roll_up_global is derivable under *any* restriction mode."""
    db = make_db(sequences)
    spec = grouped_spec(shape)  # LEFT_MAXIMALITY
    target = ops.roll_up_global(spec, "symbol", db.schema)

    warm_engine = SOLAPEngine(db)
    warm_engine.execute(spec)
    warm, stats = warm_engine.execute(target)
    assert stats.extra["cache_answer"] == "derived:roll_up_global"

    cold, __ = SOLAPEngine(db, use_repository=False).execute(target)
    assert warm.to_dict() == cold.to_dict()


@settings(max_examples=40, deadline=None)
@given(
    sequences=sequences_strategy,
    shape=shape_strategy,
    value=st.sampled_from(ALPHABET),
)
def test_derived_global_slice_matches_cold(sequences, shape, value):
    db = make_db(sequences)
    spec = grouped_spec(shape)
    target = ops.slice_global(spec, "symbol", value)

    warm_engine = SOLAPEngine(db)
    warm_engine.execute(spec)
    warm, stats = warm_engine.execute(target)
    assert stats.extra["cache_answer"] == "derived:slice_global"

    cold, __ = SOLAPEngine(db, use_repository=False).execute(target)
    assert warm.to_dict() == cold.to_dict()


@settings(max_examples=40, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_derived_pattern_roll_up_matches_cold(sequences, shape):
    """P-ROLL-UP derivation (ALL_MATCHED, unique symbol) is bit-exact."""
    spec = grouped_spec(shape, restriction=CellRestriction.ALL_MATCHED)
    symbols = [s.name for s in spec.template.symbols]
    unique = [s for s in symbols if spec.template.positions.count(s) == 1]
    assume(unique)
    db = make_db(sequences)
    target = ops.p_roll_up(spec, unique[0], db.schema)

    warm_engine = SOLAPEngine(db)
    warm_engine.execute(spec)
    warm, stats = warm_engine.execute(target)
    assert stats.extra["cache_answer"] == "derived:p_roll_up"
    assert stats.sequences_scanned == 0

    cold, __ = SOLAPEngine(db, use_repository=False).execute(target)
    assert warm.to_dict() == cold.to_dict()
