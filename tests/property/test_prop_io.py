"""Properties of the persistence layer: save/load is the identity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SOLAPEngine
from repro.core.spec import PatternKind
from repro.io import (
    load_cuboid,
    load_dataset,
    load_index,
    save_cuboid,
    save_dataset,
    save_index,
)
from repro.index.inverted import build_index
from tests.property.conftest import (
    make_db,
    sequences_strategy,
    shape_strategy,
    spec_for,
    template_from,
)


@settings(max_examples=30, deadline=None)
@given(sequences=sequences_strategy)
def test_dataset_roundtrip_preserves_queries(tmp_path_factory, sequences):
    db = make_db(sequences)
    directory = tmp_path_factory.mktemp("data")
    save_dataset(db, directory)
    loaded = load_dataset(directory)
    assert len(loaded) == len(db)
    spec = spec_for(template_from((0, 1), PatternKind.SUBSTRING))
    a, __ = SOLAPEngine(db).execute(spec, "cb")
    b, __ = SOLAPEngine(loaded).execute(spec, "cb")
    assert a.to_dict() == b.to_dict()


@settings(max_examples=30, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_index_roundtrip_is_identity(tmp_path_factory, sequences, shape):
    db = make_db(sequences)
    engine = SOLAPEngine(db)
    template = template_from(shape, PatternKind.SUBSTRING)
    spec = spec_for(template)
    group = engine.sequence_groups(spec).single_group()
    index = build_index(group, template, db.schema)
    path = tmp_path_factory.mktemp("idx") / "index.json"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.template.signature() == index.template.signature()
    assert {k: set(v) for k, v in loaded.lists.items()} == {
        k: set(v) for k, v in index.lists.items()
    }


@settings(max_examples=30, deadline=None)
@given(
    sequences=sequences_strategy,
    shape=shape_strategy,
    kind=st.sampled_from([PatternKind.SUBSTRING, PatternKind.SUBSEQUENCE]),
)
def test_cuboid_roundtrip_is_identity(tmp_path_factory, sequences, shape, kind):
    db = make_db(sequences)
    spec = spec_for(template_from(shape, kind))
    cuboid, __ = SOLAPEngine(db).execute(spec, "cb")
    path = tmp_path_factory.mktemp("cub") / "cuboid.json"
    save_cuboid(cuboid, path)
    loaded = load_cuboid(path, db.schema)
    assert loaded.spec == spec
    assert loaded.to_dict() == cuboid.to_dict()
