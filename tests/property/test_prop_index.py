"""Properties of inverted indices: builds, joins, merges, refinements."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TemplateMatcher, build_sequence_groups
from repro.core.spec import PatternKind
from repro.index.bitmap import BitmapIndex, bitmap_join
from repro.index.inverted import (
    build_index,
    join_indices,
    prefix_template,
    pair_template,
    union_indices,
    verify_index,
)
from tests.property.conftest import (
    make_db,
    sequences_strategy,
    shape_strategy,
    template_from,
)


def single_group(db):
    groups = build_sequence_groups(db, None, [("seq", "seq")], [("ts", True)])
    return groups.single_group()


@settings(max_examples=100, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_build_index_is_exact_containment(sequences, shape):
    db = make_db(sequences)
    group = single_group(db)
    template = template_from(shape, PatternKind.SUBSTRING)
    index = build_index(group, template, db.schema)
    matcher = TemplateMatcher(template, db.schema)
    for sequence in group:
        contained = set(matcher.unique_instantiations(sequence))
        for values, sids in index.lists.items():
            assert (sequence.sid in sids) == (values in contained)


@settings(max_examples=80, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_join_verify_equals_direct_build(sequences, shape):
    if len(shape) < 3:
        return
    db = make_db(sequences)
    group = single_group(db)
    template = template_from(shape, PatternKind.SUBSTRING)
    truth = build_index(group, template, db.schema)

    current = build_index(group, prefix_template(template, 2), db.schema)
    for length in range(2, template.length):
        pair = build_index(group, pair_template(template, length - 1), db.schema)
        candidate = join_indices(
            current, pair, prefix_template(template, length + 1), db.schema
        )
        current = verify_index(candidate, group, db.schema)
    assert {k: set(v) for k, v in current.lists.items()} == {
        k: set(v) for k, v in truth.lists.items()
    }


@settings(max_examples=80, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_join_candidates_superset_of_truth(sequences, shape):
    if len(shape) < 3:
        return
    db = make_db(sequences)
    group = single_group(db)
    template = template_from(shape, PatternKind.SUBSTRING)
    truth = build_index(group, template, db.schema)
    current = build_index(group, prefix_template(template, 2), db.schema)
    for length in range(2, template.length):
        pair = build_index(group, pair_template(template, length - 1), db.schema)
        current = join_indices(
            current, pair, prefix_template(template, length + 1), db.schema
        )
        # do NOT verify: candidates only ever over-approximate
    for values, sids in truth.lists.items():
        assert set(sids) <= set(current.get(values))


@settings(max_examples=80, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_rollup_merge_equals_coarse_build_for_repeat_free(sequences, shape):
    if len(set(shape)) != len(shape):
        return  # merge only claimed sound for repeat-free templates
    db = make_db(sequences)
    group = single_group(db)
    fine_template = template_from(shape, PatternKind.SUBSTRING, "symbol")
    coarse_template = template_from(shape, PatternKind.SUBSTRING, "group")
    fine = build_index(group, fine_template, db.schema)
    merged = fine.rollup(
        tuple(("symbol", "group") for __ in shape), db.schema, coarse_template
    )
    truth = build_index(group, coarse_template, db.schema)
    assert {k: set(v) for k, v in merged.lists.items()} == {
        k: set(v) for k, v in truth.lists.items()
    }


@settings(max_examples=60, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_union_of_sid_partition_is_whole(sequences, shape):
    db = make_db(sequences)
    group = single_group(db)
    template = template_from(shape, PatternKind.SUBSTRING)
    whole = build_index(group, template, db.schema)
    sids = [s.sid for s in group]
    half = len(sids) // 2
    parts = [
        build_index(group, template, db.schema, restrict_sids=sids[:half]),
        build_index(group, template, db.schema, restrict_sids=sids[half:]),
    ]
    union = union_indices(parts, template)
    assert {k: set(v) for k, v in union.lists.items()} == {
        k: set(v) for k, v in whole.lists.items()
    }


@settings(max_examples=60, deadline=None)
@given(sequences=sequences_strategy, shape=shape_strategy)
def test_bitmap_encoding_lossless_and_join_equivalent(sequences, shape):
    db = make_db(sequences)
    group = single_group(db)
    template = template_from(shape, PatternKind.SUBSTRING)
    index = build_index(group, template, db.schema)
    bitmap = BitmapIndex.from_inverted(index)
    back = bitmap.to_inverted()
    assert {k: set(v) for k, v in back.lists.items()} == {
        k: set(v) for k, v in index.lists.items()
    }
    if template.length >= 2:
        pair2 = build_index(group, pair_template(template, 0), db.schema)
        target = prefix_template(template, 2)
        if template.length > 2:
            return
        # joins agree between encodings
        left1 = build_index(group, prefix_template(template, 1), db.schema)
        list_join = join_indices(left1, pair2, target, db.schema)
        bit_join = bitmap_join(
            BitmapIndex.from_inverted(left1, sid_base=0),
            BitmapIndex.from_inverted(pair2, sid_base=0),
            target,
            db.schema,
        ).to_inverted()
        assert {k: set(v) for k, v in bit_join.lists.items()} == {
            k: set(v) for k, v in list_join.lists.items()
        }
