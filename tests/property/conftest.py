"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro import CuboidSpec, Dimension, EventDatabase, Hierarchy, PatternTemplate, Schema
from repro.core.spec import PatternKind

#: small alphabet with a two-level hierarchy: a, b -> G1; c, d -> G2; e, f -> G3
ALPHABET = ("a", "b", "c", "d", "e", "f")
GROUP_OF = {"a": "G1", "b": "G1", "c": "G2", "d": "G2", "e": "G3", "f": "G3"}


def make_schema() -> Schema:
    return Schema(
        [
            Dimension("seq"),
            Dimension("ts"),
            Dimension(
                "symbol",
                Hierarchy("symbol", ("symbol", "group"), {"group": GROUP_OF}),
            ),
        ]
    )


def make_db(sequences) -> EventDatabase:
    db = EventDatabase(make_schema())
    for seq_id, symbols in enumerate(sequences):
        for position, symbol in enumerate(symbols):
            db.append({"seq": seq_id, "ts": position, "symbol": symbol})
    return db


#: a set of data sequences: 1-8 sequences of length 1-10
sequences_strategy = st.lists(
    st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=10),
    min_size=1,
    max_size=8,
)

#: canonical symbol-identity shapes up to length 4, e.g. (0, 1, 1, 0)
def _shapes(max_length=4):
    shapes = []

    def extend(prefix):
        if prefix:
            shapes.append(tuple(prefix))
        if len(prefix) == max_length:
            return
        limit = (max(prefix) + 1 if prefix else 0) + 1
        for value in range(limit):
            prefix.append(value)
            extend(prefix)
            prefix.pop()

    extend([])
    return shapes


shape_strategy = st.sampled_from(_shapes())

SYMBOL_NAMES = "XYZW"


def template_from(shape, kind, level="symbol") -> PatternTemplate:
    positions = tuple(SYMBOL_NAMES[i] for i in shape)
    names = sorted(set(shape))
    bindings = {SYMBOL_NAMES[i]: ("symbol", level) for i in names}
    return PatternTemplate.build(kind, positions, bindings)


template_strategy = st.builds(
    template_from,
    shape_strategy,
    st.sampled_from([PatternKind.SUBSTRING, PatternKind.SUBSEQUENCE]),
    st.sampled_from(["symbol", "group"]),
)


def spec_for(template) -> CuboidSpec:
    return CuboidSpec(
        template=template,
        cluster_by=(("seq", "seq"),),
        sequence_by=(("ts", True),),
    )
