"""Property: the sharded parallel CB scan is bit-identical to the serial one.

The parallel scanner (repro.service.parallel) matches sequences on worker
threads but replays the accumulator fold in the canonical serial order, so
its output must equal the serial scan *exactly* — including float SUM/AVG
values, where addition order matters.  Python floats compare by value
bit-pattern (outside NaN), so dict equality here is a bit-identity check.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AggregateSpec,
    Dimension,
    EventDatabase,
    Hierarchy,
    Measure,
    Schema,
    build_sequence_groups,
)
from repro.core.counter_based import counter_based_cuboid
from repro.core.spec import AggregateScope
from repro.core.stats import QueryStats
from repro.service.parallel import ParallelCBScanner
from tests.property.conftest import (
    GROUP_OF,
    sequences_strategy,
    spec_for,
    template_from,
    template_strategy,
)

#: one shared pool — spawning a ThreadPoolExecutor per hypothesis example
#: would dominate the test's runtime
_POOL = ThreadPoolExecutor(max_workers=4)


def _make_measured_db(sequences) -> EventDatabase:
    """The property alphabet plus a float measure exercising SUM/AVG."""
    schema = Schema(
        [
            Dimension("seq"),
            Dimension("ts"),
            Dimension(
                "symbol",
                Hierarchy("symbol", ("symbol", "group"), {"group": GROUP_OF}),
            ),
        ],
        [Measure("val")],
    )
    db = EventDatabase(schema)
    for seq_id, symbols in enumerate(sequences):
        for position, symbol in enumerate(symbols):
            # Irregular magnitudes make float addition order observable.
            value = (seq_id + 1) * 0.1 + position * 7.30000001
            db.append(
                {"seq": seq_id, "ts": position, "symbol": symbol, "val": value}
            )
    return db


def _run_both(db, spec, shards):
    groups = build_sequence_groups(
        db, spec.where, spec.cluster_by, spec.sequence_by, spec.group_by
    )
    serial = counter_based_cuboid(db, groups, spec, QueryStats())
    scanner = ParallelCBScanner(_POOL, shards=shards, threshold=0)
    stats = QueryStats()
    parallel = scanner(db, groups, spec, stats)
    return serial, parallel, stats


@settings(max_examples=60, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    shards=st.integers(min_value=2, max_value=5),
)
def test_parallel_scan_bit_identical_counts(sequences, template, shards):
    db = _make_measured_db(sequences)
    spec = spec_for(template)
    serial, parallel, stats = _run_both(db, spec, shards)
    if parallel is None:  # declined: too little work to shard
        assert sum(len(g) for g in build_sequence_groups(
            db, None, spec.cluster_by, spec.sequence_by
        )) < 2
        return
    assert parallel.cells == serial.cells
    assert stats.extra["parallel_shards"] >= 1
    assert stats.sequences_scanned == len(sequences)


@settings(max_examples=40, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    shards=st.integers(min_value=2, max_value=5),
)
def test_parallel_scan_bit_identical_float_aggregates(
    sequences, template, shards
):
    db = _make_measured_db(sequences)
    spec = replace(
        spec_for(template),
        aggregates=(
            AggregateSpec("COUNT"),
            AggregateSpec("SUM", "val", AggregateScope.MATCHED),
            AggregateSpec("AVG", "val", AggregateScope.SEQUENCE),
        ),
    )
    serial, parallel, __ = _run_both(db, spec, shards)
    if parallel is None:
        return
    # Exact equality on the float sums: the fold replays serial order.
    assert parallel.cells == serial.cells


def test_scanner_declines_below_threshold():
    from repro import PatternKind

    db = _make_measured_db([["a", "b"], ["b", "a"]])
    spec = spec_for(template_from((0, 1), PatternKind.SUBSTRING))
    groups = build_sequence_groups(
        db, None, spec.cluster_by, spec.sequence_by
    )
    scanner = ParallelCBScanner(_POOL, shards=4, threshold=100)
    assert scanner(db, groups, spec, QueryStats()) is None

    single = ParallelCBScanner(_POOL, shards=1, threshold=0)
    assert single(db, groups, spec, QueryStats()) is None  # one shard: decline


def test_scanner_validation():
    with pytest.raises(ValueError):
        ParallelCBScanner(_POOL, shards=0)
