"""Property: the dictionary-encoded matcher kernel is invisible.

The compiled (code-space) matcher must produce bit-identical cuboids to
the legacy value-space matcher for every template, strategy, and cell
restriction — the encoded path is a pure performance substitution, never
a semantic one.  The A/B runs force the legacy kernel via
:func:`repro.core.matcher.kernel_mode`.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CellRestriction, SOLAPEngine
from repro.core.matcher import kernel_mode
from repro.core.spec import PatternKind
from repro.service import QueryService, ServiceConfig
from tests.property.conftest import (
    ALPHABET,
    make_db,
    sequences_strategy,
    spec_for,
    template_from,
    template_strategy,
)

RESTRICTIONS = st.sampled_from(
    [
        CellRestriction.LEFT_MAXIMALITY,
        CellRestriction.LEFT_MAXIMALITY_DATA,
        CellRestriction.ALL_MATCHED,
    ]
)


def _run(db, spec, strategy):
    cuboid, stats = SOLAPEngine(db).execute(spec, strategy)
    return cuboid, stats


@settings(max_examples=100, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
)
def test_encoded_cb_equals_legacy_cb(sequences, template, restriction):
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    encoded, stats = _run(db, spec, "cb")
    # these templates are always compilable — the A/B must not be vacuous
    assert stats.extra.get("matcher") == "compiled"
    with kernel_mode("legacy"):
        legacy, legacy_stats = _run(db, spec, "cb")
    assert legacy_stats.extra.get("matcher") == "legacy"
    assert encoded.to_dict() == legacy.to_dict()


@settings(max_examples=60, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
)
def test_encoded_ii_equals_legacy_ii(sequences, template, restriction):
    """BuildIndex + join + verify through the compiled kernel agree with
    the all-legacy chain."""
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    encoded, __ = _run(db, spec, "ii")
    with kernel_mode("legacy"):
        legacy, __ = _run(db, spec, "ii")
    assert encoded.to_dict() == legacy.to_dict()


@settings(max_examples=60, deadline=None)
@given(
    sequences=sequences_strategy,
    template=template_strategy,
    restriction=RESTRICTIONS,
)
def test_encoded_cb_equals_legacy_ii(sequences, template, restriction):
    """Cross-check across both axes at once: compiled CB vs legacy II."""
    db = make_db(sequences)
    spec = replace(spec_for(template), restriction=restriction)
    encoded, __ = _run(db, spec, "cb")
    with kernel_mode("legacy"):
        legacy, __ = _run(db, spec, "ii")
    assert encoded.to_dict() == legacy.to_dict()


def _backend_dataset():
    rng = random.Random(7)
    return [
        [rng.choice(ALPHABET) for __ in range(rng.randint(3, 10))]
        for __ in range(40)
    ]


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("level", ["symbol", "group"])
def test_encoded_scan_backends_equal_legacy(backend, level):
    """Service scans on every execution backend match the legacy kernel.

    The process backend re-creates the encoded store (and its level maps)
    in worker interpreters via pickling, so this is the test that the
    codes never leak across process boundaries: each worker decodes with
    its own dictionary and the folded cuboid must still be bit-identical
    to a serial legacy-matcher run.
    """
    sequences = _backend_dataset()
    template = template_from((0, 1), PatternKind.SUBSTRING, level)
    spec = spec_for(template)
    svc = QueryService(
        make_db(sequences),
        ServiceConfig(
            max_workers=2,
            executor_backend=backend,
            parallel_scan_threshold=1,
        ),
    )
    try:
        cuboid, __ = svc.execute(spec, "cb")
    finally:
        svc.close()
    with kernel_mode("legacy"):
        legacy, legacy_stats = _run(make_db(sequences), spec, "cb")
    assert legacy_stats.extra.get("matcher") == "legacy"
    assert cuboid.to_dict() == legacy.to_dict()
