"""Property: the matcher agrees with a brute-force reference oracle.

The oracle re-implements pattern grouping from the paper's definitions in
the most naive possible way — enumerate every window (substring) or every
index combination (subsequence) with itertools, apply symbol equality and
restrictions by hand, and fold the cell restriction directly.  Any
divergence between the optimised matcher and this oracle is a semantics
bug, independent of the CB/II cross-check (which could in principle share
a bug through the common matcher).
"""

import itertools
from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CellRestriction, TemplateMatcher, build_sequence_groups
from repro.core.spec import PatternKind, PatternTemplate
from tests.property.conftest import (
    GROUP_OF,
    make_db,
    sequences_strategy,
    shape_strategy,
    template_from,
)


def oracle_assignments(
    symbols: List[str],
    template: PatternTemplate,
    restriction: CellRestriction,
) -> Dict[Tuple, List[Tuple[int, ...]]]:
    """Reference implementation of cell assignment (indices as content)."""
    m = template.length
    n_events = len(symbols)
    position_symbols = template.position_symbols()
    symbol_ids = template.symbol_ids()

    def mapped(value: str, level: str) -> str:
        return GROUP_OF[value] if level == "group" else value

    def occurrence_values(indices: Tuple[int, ...]):
        values = []
        for offset, index in enumerate(indices):
            symbol = position_symbols[offset]
            values.append(mapped(symbols[index], symbol.level))
        # symbol equality
        for i in range(m):
            for j in range(i + 1, m):
                if symbol_ids[i] == symbol_ids[j] and values[i] != values[j]:
                    return None
        return tuple(values)

    if template.kind is PatternKind.SUBSTRING:
        candidates = [
            tuple(range(start, start + m)) for start in range(n_events - m + 1)
        ]
    else:
        candidates = sorted(itertools.combinations(range(n_events), m))

    assignments: Dict[Tuple, List[Tuple[int, ...]]] = {}
    for indices in candidates:
        values = occurrence_values(indices)
        if values is None:
            continue
        first_positions = []
        seen = set()
        for position, dim in enumerate(symbol_ids):
            if dim not in seen:
                seen.add(dim)
                first_positions.append(position)
        cell = tuple(values[p] for p in first_positions)
        if restriction is CellRestriction.ALL_MATCHED:
            assignments.setdefault(cell, []).append(indices)
        elif cell not in assignments:
            assignments[cell] = [indices]
    return assignments


RESTRICTIONS = st.sampled_from(
    [CellRestriction.LEFT_MAXIMALITY, CellRestriction.ALL_MATCHED]
)
KINDS = st.sampled_from([PatternKind.SUBSTRING, PatternKind.SUBSEQUENCE])
LEVELS = st.sampled_from(["symbol", "group"])


@settings(max_examples=150, deadline=None)
@given(
    sequences=sequences_strategy,
    shape=shape_strategy,
    kind=KINDS,
    level=LEVELS,
    restriction=RESTRICTIONS,
)
def test_matcher_agrees_with_oracle(sequences, shape, kind, level, restriction):
    db = make_db(sequences)
    template = template_from(shape, kind, level)
    matcher = TemplateMatcher(template, db.schema, restriction)
    groups = build_sequence_groups(db, None, [("seq", "seq")], [("ts", True)])
    for sequence in groups.all_sequences():
        raw_symbols = list(sequence.symbols("symbol", "symbol"))
        expected = oracle_assignments(raw_symbols, template, restriction)
        actual = matcher.assignments(sequence)
        # compare cells and, for each cell, the event positions assigned
        assert set(actual) == set(expected)
        for cell, contents in actual.items():
            actual_positions = [
                tuple(sequence.rows.index(row) for row in content)
                for content in contents
            ]
            assert actual_positions == expected[cell], (cell, template.positions)


@settings(max_examples=80, deadline=None)
@given(
    sequences=sequences_strategy,
    shape=shape_strategy,
    kind=KINDS,
)
def test_data_go_contents_are_whole_sequences(sequences, shape, kind):
    """Data-go agrees with left-maximality on cells, differs on contents."""
    db = make_db(sequences)
    template = template_from(shape, kind)
    left = TemplateMatcher(template, db.schema, CellRestriction.LEFT_MAXIMALITY)
    data = TemplateMatcher(
        template, db.schema, CellRestriction.LEFT_MAXIMALITY_DATA
    )
    groups = build_sequence_groups(db, None, [("seq", "seq")], [("ts", True)])
    for sequence in groups.all_sequences():
        left_cells = left.assignments(sequence)
        data_cells = data.assignments(sequence)
        assert set(left_cells) == set(data_cells)
        for contents in data_cells.values():
            assert contents == [tuple(sequence.rows)]
