"""Shared fixtures: the paper's worked examples and small generated datasets."""

from __future__ import annotations

import pytest

from repro import (
    CuboidSpec,
    Dimension,
    EventDatabase,
    Hierarchy,
    Measure,
    PatternTemplate,
    Schema,
)

#: The paper's Figure 8/10 station -> district mapping (D10 holds Pentagon
#: and Clarendon, the roll-up counter-example pair).
DISTRICTS = {
    "Glenmont": "D20",
    "Wheaton": "D20",
    "Pentagon": "D10",
    "Clarendon": "D10",
    "Deanwood": "D30",
}

#: The four sequences of Figure 8 (station values; odd positions are "in"
#: events, even positions "out").
FIGURE8_SEQUENCES = {
    688: ["Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon"],
    23456: ["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
    1012: ["Clarendon", "Pentagon"],
    77: ["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
}


def make_transit_schema() -> Schema:
    return Schema(
        [
            Dimension("time"),
            Dimension("card"),
            Dimension(
                "location",
                Hierarchy("location", ("station", "district"), {"district": DISTRICTS}),
            ),
            Dimension("action"),
        ],
        [Measure("amount")],
    )


def make_figure8_db() -> EventDatabase:
    schema = make_transit_schema()
    records = []
    for card, stations in FIGURE8_SEQUENCES.items():
        for position, station in enumerate(stations):
            records.append(
                {
                    "time": position,
                    "card": card,
                    "location": station,
                    "action": "in" if position % 2 == 0 else "out",
                    "amount": -2.0 if position % 2 else 0.0,
                }
            )
    return EventDatabase.from_records(schema, records)


@pytest.fixture
def transit_schema() -> Schema:
    return make_transit_schema()


@pytest.fixture
def figure8_db() -> EventDatabase:
    return make_figure8_db()


def location_template(positions, kind="substring") -> PatternTemplate:
    bindings = {name: ("location", "station") for name in positions}
    builder = (
        PatternTemplate.substring
        if kind == "substring"
        else PatternTemplate.subsequence
    )
    return builder(tuple(positions), bindings)


def figure8_spec(positions, kind="substring", **kwargs) -> CuboidSpec:
    return CuboidSpec(
        template=location_template(positions, kind),
        cluster_by=(("card", "card"),),
        sequence_by=(("time", True),),
        **kwargs,
    )


@pytest.fixture
def xy_spec() -> CuboidSpec:
    """(X, Y) substring spec over the Figure 8 database."""
    return figure8_spec(("X", "Y"))


@pytest.fixture
def xyyx_spec() -> CuboidSpec:
    """(X, Y, Y, X) substring spec over the Figure 8 database (Q1 shape)."""
    return figure8_spec(("X", "Y", "Y", "X"))
