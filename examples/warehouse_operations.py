"""Warehouse operations: persistence, index advising, and daily OD reports.

Plays through the operational lifecycle the paper's Discussion section
describes for the subway company:

1. persist the event warehouse to disk (self-describing dataset dir);
2. profile a recurring query workload and let the index advisor pick
   which inverted indices to materialise offline (Section 4.2.2's open
   question);
3. generate the daily OD-matrices the IT department ships to other
   departments (Section 6) — derived from the S-OLAP engine instead of a
   customised program, cutting the paper's "one to two weeks" turnaround
   to one query;
4. answer the round-trip discount question with a cost-model-routed query.

Run:  python examples/warehouse_operations.py
"""

import tempfile
from pathlib import Path

from repro import SOLAPEngine
from repro.datagen import (
    TransitConfig,
    generate_transit,
    round_trip_spec,
    single_trip_spec,
)
from repro.core.spec import CuboidSpec
from repro.io import load_dataset, save_dataset
from repro.optimizer import IndexAdvisor, advise_for_workload
from repro.reports import daily_od_matrices


def main() -> None:
    # ---- 1. persist and reload the warehouse ----------------------------
    db = generate_transit(TransitConfig(n_cards=250, n_days=4, seed=17))
    with tempfile.TemporaryDirectory() as tmp:
        directory = save_dataset(db, Path(tmp) / "warehouse")
        db = load_dataset(directory)
        print(f"warehouse persisted and reloaded: {len(db)} events\n")

    engine = SOLAPEngine(db)

    # ---- 2. advise indices for the recurring workload -------------------
    workload = [single_trip_spec(), round_trip_spec(group_by_fare=False)]
    recommendations = advise_for_workload(engine, workload)
    print("index advisor recommendations:")
    for rec in recommendations:
        print(f"  {rec}")
    IndexAdvisor.materialize(engine, recommendations, workload[0])
    print()

    # ---- 3. the daily OD-matrix report ----------------------------------
    from dataclasses import replace

    daily_spec: CuboidSpec = replace(
        single_trip_spec(), group_by=(("time", "day"),)
    )
    matrices = daily_od_matrices(engine, daily_spec, strategy="ii")
    first_day = sorted(matrices)[0]
    matrix = matrices[first_day]
    print(f"OD-matrix for day {first_day} (single trips):")
    print(matrix.render())
    origin, destination, count = matrix.busiest_pair()
    print(f"\nbusiest flow: {origin} -> {destination} ({count} passengers)\n")

    # ---- 4. the round-trip discount question ----------------------------
    cuboid, stats = engine.execute(round_trip_spec(group_by_fare=False), "cost")
    print("round-trip distribution (cost-model routed):")
    print(cuboid.tabulate(limit=5))
    print(
        f"\n{stats.summary()}  "
        f"(modelled: CB {stats.extra.get('cost_cb', 0):.0f} vs "
        f"II {stats.extra.get('cost_ii', 0):.0f} scan-equivalents)"
    )


if __name__ == "__main__":
    main()
