"""Supply-chain RFID analysis: bulky movement, roll-ups, shrinkage.

The paper's introduction names commodity-tracking RFID logs as a
motivating sequence domain, and its related work highlights their
defining property: items move in bulk until split at a distribution
centre.  This example runs the canonical supply-chain queries:

1. two-step movement distribution at reader level — fragmented;
2. P-ROLL-UP to zone and site level — bulky movement collapses the
   distribution into a handful of heavy flow cells;
3. the shrinkage report: items whose last sighting is still in-transit,
   per zone of disappearance;
4. a week-over-week diff of the flow cuboid (cuboid diffing).

Run:  python examples/supply_chain.py
"""

from repro import SOLAPEngine
from repro.core import operations as ops
from repro.datagen import (
    RFIDConfig,
    generate_rfid,
    rfid_path_spec,
    rfid_shrinkage_spec,
)
from repro.reports import diff_cuboids


def main() -> None:
    db = generate_rfid(RFIDConfig(n_lots=80, lot_size=12, seed=31))
    engine = SOLAPEngine(db)
    print(f"RFID warehouse: {len(db)} read events\n")

    # ---- 1. reader-level flows are fragmented ----------------------------
    reader_spec = rfid_path_spec("reader")
    reader_cuboid, stats = engine.execute(reader_spec, "ii")
    print(
        f"reader-level flows: {len(reader_cuboid)} cells "
        f"({stats.summary()})"
    )

    # ---- 2. roll up: bulky movement collapses the distribution -----------
    zone_spec = ops.p_roll_up(
        ops.p_roll_up(reader_spec, "X", db.schema), "Y", db.schema
    )
    zone_cuboid, stats = engine.execute(zone_spec, "ii")
    print(f"zone-level flows:   {len(zone_cuboid)} cells ({stats.summary()})")
    site_spec = ops.p_roll_up(
        ops.p_roll_up(zone_spec, "X", db.schema), "Y", db.schema
    )
    site_cuboid, stats = engine.execute(site_spec, "ii")
    print(f"site-level flows:   {len(site_cuboid)} cells ({stats.summary()})\n")
    print("site-level flow matrix:")
    print(site_cuboid.tabulate(limit=8))
    print()

    # ---- 3. shrinkage report ---------------------------------------------
    shrinkage, __ = engine.execute(rfid_shrinkage_spec(), "cb")
    print(f"shrinkage: {int(shrinkage.total())} items lost, by last-seen zone:")
    print(shrinkage.tabulate(limit=6))
    print()

    # ---- 4. week-over-week diff -------------------------------------------
    next_week = generate_rfid(RFIDConfig(n_lots=80, lot_size=12, seed=32,
                                         p_shrinkage=0.12))
    next_cuboid, __ = SOLAPEngine(next_week).execute(
        rfid_shrinkage_spec(), "cb"
    )
    diff = diff_cuboids(shrinkage, next_cuboid)
    print("week-over-week shrinkage diff:")
    print(diff.render(limit=5))


if __name__ == "__main__":
    main()
