"""Transportation planning: the paper's full Q1 → Q2 exploration.

Reproduces the Introduction's scenario: a transport-planning manager

1. asks for round-trip distributions over all origin-destination pairs (Q1),
2. spots the dominant pair, slices on it,
3. APPENDs a third trip (X, Z) to see where those passengers go next (Q2),
4. finds the result too fragmented and P-ROLLs-UP the new dimension Z from
   station to district level,
5. finally rolls up the card-id global dimension from fare-group... back
   down, demonstrating classical operations on global dimensions.

Each step runs through a :class:`repro.Session`, which records per-step
statistics — watch the inverted-index strategy reuse earlier work.

Run:  python examples/transit_analysis.py
"""

from repro import SOLAPEngine, Session
from repro.datagen import TransitConfig, generate_transit, round_trip_spec
from repro.events.expression import Comparison, Literal, PlaceholderField


def main() -> None:
    config = TransitConfig(n_cards=400, n_days=5, seed=3)
    db = generate_transit(config)
    engine = SOLAPEngine(db)
    print(f"Event database: {len(db)} tap events over {config.n_days} days\n")

    # ---- Q1: round trips per day and fare-group -------------------------
    session = Session(engine, round_trip_spec(), strategy="ii")
    cuboid, stats = session.run()
    print("Q1 — round trips (X, Y, Y, X) per (fare-group, day):")
    print(cuboid.tabulate(limit=6))
    print(f"{stats.summary()}\n")

    top = cuboid.argmax()
    assert top is not None
    __, (origin, destination), count = top
    print(
        f"Dominant round trip: {origin} -> {destination} -> back "
        f"({count} occurrences in its heaviest group)\n"
    )

    # The exploration advisor reaches the same conclusion automatically
    # (on the ungrouped view, where the hot pair's dominance is global).
    from repro.datagen import round_trip_spec as rt_spec
    from repro.reports import suggest_operations

    ungrouped, __stats = engine.execute(rt_spec(group_by_fare=False), "ii")
    for insight in suggest_operations(ungrouped, db.schema):
        print(f"advisor: {insight.operation}({insight.argument}) — {insight.reason}")
    print()

    # ---- Q2: slice on the hot pair, APPEND a third trip ------------------
    session.slice_cell((origin, destination))
    session.append(
        "X",  # third trip re-enters at X ...
        placeholder="x3",
        extra_predicate=Comparison(
            PlaceholderField("x3", "action"), "=", Literal("in")
        ),
    )
    session.append(
        "Z",
        attribute="location",
        level="station",
        placeholder="z1",
        extra_predicate=Comparison(
            PlaceholderField("z1", "action"), "=", Literal("out")
        ),
    )
    cuboid, stats = session.run()
    print("Q2 — follow-up trips (X, Y, Y, X, X, Z), sliced to the hot pair:")
    print(cuboid.tabulate(limit=6))
    print(f"{stats.summary()}\n")

    # ---- Too fragmented: P-ROLL-UP Z to district level -------------------
    session.p_roll_up("Z")
    cuboid, stats = session.run()
    print("After P-ROLL-UP of Z (station -> district):")
    print(cuboid.tabulate(limit=6))
    print(f"{stats.summary()}\n")

    # ---- Classical operation: drill the card-id global dimension --------
    session.drill_down("card-id")
    cuboid, stats = session.run()
    print(
        "After drill-down of the card-id global dimension "
        f"(fare-group -> individual): {len(cuboid)} cells"
    )
    print(f"{stats.summary()}\n")

    total = session.cumulative_stats()
    print(
        f"Session total: {len(session.history)} queries, "
        f"{total.sequences_scanned} sequences scanned, "
        f"{total.index_bytes_built / 1e6:.3f} MB of indices built"
    )


if __name__ == "__main__":
    main()
