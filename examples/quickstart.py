"""Quickstart: round-trip analysis on smart-card transit data.

Builds a synthetic transit event database (the paper's running example),
expresses the paper's Q1 — "number of round-trip passengers over all
origin-destination station pairs, per day and fare-group" — in the S-OLAP
query language, executes it with both construction strategies, and prints
the Figure-2-style tabulation.

Run:  python examples/quickstart.py
"""

from repro import SOLAPEngine
from repro.datagen import TransitConfig, generate_transit
from repro.ql import format_spec, parse_query

QUERY = """
SELECT COUNT(*) FROM Event
CLUSTER BY card-id AT individual, time AT day
SEQUENCE BY time ASCENDING
SEQUENCE GROUP BY card-id AT fare-group
CUBOID BY SUBSTRING (X, Y, Y, X)
  WITH X AS location AT station, Y AS location AT station
LEFT-MAXIMALITY (x1, y1, y2, x2)
  WITH x1.action = "in" AND y1.action = "out"
   AND y2.action = "in" AND x2.action = "out"
"""


def main() -> None:
    db = generate_transit(TransitConfig(n_cards=300, n_days=5, seed=11))
    print(f"Event database: {len(db)} tap events\n")

    spec = parse_query(QUERY, db.schema)
    print("Parsed specification (round-tripped through the formatter):")
    print(format_spec(spec))
    print()

    engine = SOLAPEngine(db)
    cuboid, stats_cb = engine.execute(spec, strategy="cb")
    print("Round-trip S-cuboid (top cells, counter-based strategy):")
    print(cuboid.tabulate(limit=8))
    print(f"\n{stats_cb.summary()}")

    # The same query through the inverted-index strategy must agree.
    engine_ii = SOLAPEngine(db)
    cuboid_ii, stats_ii = engine_ii.execute(spec, strategy="ii")
    assert cuboid.to_dict() == cuboid_ii.to_dict()
    print(stats_ii.summary())
    print("\nCounter-based and inverted-index strategies agree cell-for-cell.")


if __name__ == "__main__":
    main()
