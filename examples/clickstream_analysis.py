"""Clickstream analysis: the paper's KDD-Cup 2000 exploration (Section 5.1).

Walks the exact published exploration on the Gazelle-shaped synthetic
clickstream:

* **Qa** — all two-step page accesses at the page-category level; the
  (Assortment, Legwear) cell dominates;
* **Qb** — slice that cell, then P-DRILL-DOWN Y to raw pages to see *which*
  Legwear products follow an Assortment page (product-id-null and
  product-id-34893 lead, as in the paper);
* **Qc** — APPEND another Legwear page: "comparison shopping" pairs such
  as the DKNY 34885 -> 34897 hop.

Both strategies run side by side; the inverted-index strategy scans far
fewer sequences on Qb/Qc because it refines and reuses Qa's lists.

Run:  python examples/clickstream_analysis.py
"""

from repro import SOLAPEngine, Session
from repro.core.spec import PatternSymbol
from repro.datagen import (
    ClickstreamConfig,
    generate_clickstream,
    remove_crawler_sessions,
    two_step_spec,
)


def main() -> None:
    raw = generate_clickstream(ClickstreamConfig(n_sessions=4000, seed=2000))
    db = remove_crawler_sessions(raw)
    print(
        f"Clickstream: {len(raw)} raw events, {len(db)} after crawler "
        "filtering (the paper's preprocessing step 1)\n"
    )

    engine = SOLAPEngine(db)
    session = Session(engine, two_step_spec(), strategy="ii")

    # ---- Qa ---------------------------------------------------------------
    cuboid, stats = session.run()
    print("Qa — two-step accesses at page-category level (top cells):")
    print(cuboid.tabulate(limit=5))
    print(f"{stats.summary()}\n")
    assortment_legwear = cuboid.count(("Assortment", "Legwear"))
    assortment_legcare = cuboid.count(("Assortment", "Legcare"))
    print(
        f"(Assortment, Legwear) = {assortment_legwear} vs "
        f"(Assortment, Legcare) = {assortment_legcare}\n"
    )

    # ---- Qb: slice + P-DRILL-DOWN ------------------------------------------
    session.slice_cell(("Assortment", "Legwear"))
    session.p_drill_down("Y")
    cuboid, stats = session.run()
    print("Qb — which Legwear pages follow an Assortment page:")
    print(cuboid.tabulate(limit=5))
    print(f"{stats.summary()}\n")

    # ---- Qc: APPEND a second Legwear page (comparison shopping) ------------
    session.append("Z", attribute="page", level="raw-page")
    spec = session.spec
    restricted_z = PatternSymbol(
        "Z", "page", "raw-page", within=("page-category", "Legwear")
    )
    session.replace_spec(
        spec.with_template(spec.template.replace_symbol("Z", restricted_z))
    )
    cuboid, stats = session.run()
    print("Qc — comparison-shopping triples (Assortment, product, product):")
    print(cuboid.tabulate(limit=5))
    print(f"{stats.summary()}\n")

    pair = cuboid.count(
        ("Assortment", "product-id-34885", "product-id-34897")
    )
    print(f"(Assortment, 34885, 34897) comparison-shopping count: {pair}")

    # ---- Bonus: the Introduction's "lost-sales" pattern (P, K) -------------
    # "show the number of visitors with a visiting pattern of (P, K)" where
    # P is a product page and K a killer page (e.g. logout).
    from repro.core import operations as ops

    lost_sales = two_step_spec()
    lost_sales = ops.slice_pattern(lost_sales, "X", "Legwear")
    lost_sales = ops.p_drill_down(
        ops.slice_pattern(lost_sales, "Y", "Main Pages"), "Y"
        , engine.db.schema
    )
    lost_sales = ops.slice_pattern(lost_sales, "Y", "logout")
    lost, stats = engine.execute(lost_sales, "ii")
    print(
        f"\nLost-sales sessions (Legwear page then logout): {int(lost.total())}"
    )
    total = session.cumulative_stats()
    print(
        f"\nExploration total: {total.sequences_scanned} sequences scanned, "
        f"{total.index_bytes_built / 1e6:.3f} MB of indices built "
        "(compare with a CB run, which rescans every session each query)."
    )


if __name__ == "__main__":
    main()
