"""Extensions demo: iceberg cuboids, online aggregation, incremental updates.

Exercises the three Section-6 research directions the library implements:

1. **Iceberg S-cuboids** — only cells above a minimum support, computed
   with anti-monotone list pruning on the inverted-index join chain;
2. **Online aggregation** — progressive answers that converge to the exact
   cuboid ("approximate numbers ... would be informative enough");
3. **Incremental index maintenance** — a day of new transactions indexes
   only the new day and answers whole-history queries by list union.

Run:  python examples/extensions_demo.py
"""

from repro import SOLAPEngine
from repro.datagen import SyntheticConfig, generate_event_database
from repro.datagen.synthetic import base_spec
from repro.datagen.transit import MINUTES_PER_DAY, TransitConfig, generate_database
from repro.extensions import (
    PartitionedIndexMaintainer,
    iceberg_counter_based,
    iceberg_inverted_index,
    online_cuboid,
)
from repro.core.spec import PatternTemplate


def demo_iceberg() -> None:
    print("=" * 64)
    print("1. Iceberg S-cuboids (min support pruning)")
    print("=" * 64)
    db = generate_event_database(SyntheticConfig(D=600, L=12, seed=5))
    engine = SOLAPEngine(db)
    spec = base_spec(("X", "Y", "Z"))
    groups = engine.sequence_groups(spec)

    full, __ = engine.execute(spec, "cb")
    for min_support in (2, 5, 10):
        iceberg = iceberg_inverted_index(db, groups, spec, min_support)
        baseline = iceberg_counter_based(db, groups, spec, min_support)
        assert iceberg.to_dict() == baseline.to_dict()
        print(
            f"  min_support={min_support:>2}: {len(iceberg):>5} cells "
            f"(full cuboid has {len(full)})"
        )
    print()


def demo_online_aggregation() -> None:
    print("=" * 64)
    print("2. Online aggregation (progressive refinement)")
    print("=" * 64)
    db = generate_event_database(SyntheticConfig(D=800, L=12, seed=6))
    engine = SOLAPEngine(db)
    spec = base_spec(("X", "Y"))
    groups = engine.sequence_groups(spec)
    exact, __ = engine.execute(spec, "cb")
    target = exact.argmax()
    assert target is not None
    group_key, cell_key, true_count = target
    print(f"  tracking heaviest cell {cell_key} (true count {true_count})")
    for estimate in online_cuboid(db, groups, spec, chunk_size=200):
        guess = estimate.estimated_count(cell_key, group_key)
        print(
            f"  {estimate.fraction:>5.0%} processed -> estimate "
            f"{guess:7.1f} (exact so far {estimate.partial.count(cell_key, group_key)})"
        )
    assert estimate.partial.to_dict() == exact.to_dict()
    print("  final progressive answer equals the exact cuboid\n")


def demo_incremental() -> None:
    print("=" * 64)
    print("3. Incremental index maintenance (day-by-day ingest)")
    print("=" * 64)
    config = TransitConfig(n_cards=150, n_days=4, seed=9)
    db_full = generate_database(config)
    template = PatternTemplate.substring(
        ("X", "Y"),
        {"X": ("location", "station"), "Y": ("location", "station")},
    )
    # Fresh empty database; feed it the full data one day at a time.
    from repro.datagen.transit import build_schema
    from repro.events.database import EventDatabase

    db = EventDatabase(build_schema(config))
    maintainer = PartitionedIndexMaintainer(
        db,
        template,
        cluster_by=(("card-id", "individual"), ("time", "day")),
        sequence_by=(("time", True),),
        partition_of=lambda event: int(event["time"]) // MINUTES_PER_DAY,
    )
    events_by_day: dict = {}
    for event in db_full:
        events_by_day.setdefault(
            int(event["time"]) // MINUTES_PER_DAY, []
        ).append(event.to_dict())
    for day in sorted(events_by_day):
        touched = maintainer.ingest(events_by_day[day])
        union = maintainer.combined_index()
        print(
            f"  ingested day {day}: reindexed partitions {touched}; "
            f"union index now {len(union)} lists / {union.num_entries()} entries"
        )
    print(
        f"  maintainer scanned {maintainer.stats.sequences_scanned} sequences "
        "in total (each day scanned once, never rescanned)\n"
    )


def main() -> None:
    demo_iceberg()
    demo_online_aggregation()
    demo_incremental()


if __name__ == "__main__":
    main()
