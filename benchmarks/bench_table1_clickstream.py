"""Table 1 — the real-data exploration Qa -> Qb -> Qc, CB vs II.

Paper's rows (Gazelle clickstream, 50,524 sequences, no precomputation):

    Query  CB ms / seqs scanned     II ms / seqs scanned / II MB
    Qa     24.3 / 50,524            46.24 / 50,524 / 0.897
    Qb     21.5 / 50,524             6.26 /  2,201 / 0.104
    Qc     23.0 / 50,524             5.92 /    842 / 0
    Total  68.8 / 151,572           58.42 / 53,567 / 1.001

Shape claims checked here (absolute numbers differ: Python vs C++, scaled
dataset):

* CB rescans every sequence on every query; II scans everything only on Qa;
* II's Qb/Qc scan counts collapse to the sliced subpopulation;
* only II builds index bytes, with most built on Qa.
"""

import pytest

from repro.bench import comparison_table, run_clickstream_exploration


@pytest.fixture(scope="module")
def cb_steps(clickstream_db):
    return run_clickstream_exploration(clickstream_db, "cb")


@pytest.fixture(scope="module")
def ii_steps(clickstream_db):
    return run_clickstream_exploration(clickstream_db, "ii")


def test_table1_cb(benchmark, clickstream_db):
    steps = benchmark.pedantic(
        run_clickstream_exploration,
        args=(clickstream_db, "cb"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["seqs_scanned"] = sum(s.sequences_scanned for s in steps)


def test_table1_ii(benchmark, clickstream_db):
    steps = benchmark.pedantic(
        run_clickstream_exploration,
        args=(clickstream_db, "ii"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["seqs_scanned"] = sum(s.sequences_scanned for s in steps)
    benchmark.extra_info["index_mb"] = sum(s.index_mb for s in steps)


def test_table1_shape(benchmark, clickstream_db, cb_steps, ii_steps, capsys):
    def render():
        return comparison_table(
            [s.label for s in cb_steps],
            cb_steps,
            ii_steps,
            "Table 1 (reproduced): clickstream exploration Qa -> Qb -> Qc",
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")

    n_sessions = len(set(clickstream_db.column("session-id")))
    cb = {s.label: s for s in cb_steps}
    ii = {s.label: s for s in ii_steps}
    # CB rescans the full dataset on all three queries.
    assert all(cb[q].sequences_scanned == n_sessions for q in ("Qa", "Qb", "Qc"))
    # II scans everything once (Qa), then collapses.
    assert ii["Qa"].sequences_scanned == n_sessions
    # Qb/Qc collapse to roughly the sliced subpopulation — a small
    # fraction of the dataset (the paper's 2,201 and 842 of 50,524).
    assert ii["Qb"].sequences_scanned < n_sessions / 4
    assert ii["Qc"].sequences_scanned < n_sessions / 4
    assert (
        ii["Qb"].sequences_scanned + ii["Qc"].sequences_scanned
        < ii["Qa"].sequences_scanned / 2
    )
    # Only II builds indices; the bulk is built during Qa.
    assert all(cb[q].index_bytes_built == 0 for q in ("Qa", "Qb", "Qc"))
    assert ii["Qa"].index_bytes_built > ii["Qb"].index_bytes_built
    # Follow-up queries are faster under II than CB (the paper's headline).
    assert ii["Qb"].sequences_scanned < cb["Qb"].sequences_scanned
    assert ii["Qc"].sequences_scanned < cb["Qc"].sequences_scanned
