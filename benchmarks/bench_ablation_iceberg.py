"""Ablation — iceberg S-cuboids with list-size pruning (Section 6).

Compares the CB baseline (full scan + output filter) against the II
variant that prunes sub-threshold lists between join steps, on a length-3
template where pruning pays off.
"""

import pytest

from repro import SOLAPEngine
from repro.core.stats import QueryStats
from repro.datagen.synthetic import base_spec
from repro.extensions import iceberg_counter_based, iceberg_inverted_index

MIN_SUPPORT = 5


@pytest.fixture(scope="module")
def setup(synthetic_db_base):
    db = synthetic_db_base
    spec = base_spec(("X", "Y", "Z"))
    groups = SOLAPEngine(db).sequence_groups(spec)
    return db, groups, spec


def test_iceberg_cb(benchmark, setup):
    db, groups, spec = setup
    result = benchmark.pedantic(
        iceberg_counter_based,
        args=(db, groups, spec, MIN_SUPPORT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cells"] = len(result)


def test_iceberg_ii(benchmark, setup):
    db, groups, spec = setup
    stats = QueryStats()
    result = benchmark.pedantic(
        iceberg_inverted_index,
        args=(db, groups, spec, MIN_SUPPORT),
        kwargs={"stats": stats},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cells"] = len(result)
    benchmark.extra_info["lists_pruned"] = stats.extra.get("lists_pruned", 0)


def test_iceberg_shape(benchmark, setup, capsys):
    db, groups, spec = setup

    def both():
        stats = QueryStats()
        ii = iceberg_inverted_index(db, groups, spec, MIN_SUPPORT, stats)
        cb = iceberg_counter_based(db, groups, spec, MIN_SUPPORT)
        full, __ = SOLAPEngine(db).execute(spec, "cb")
        return ii, cb, full, stats

    ii, cb, full, stats = benchmark.pedantic(both, rounds=1, iterations=1)
    # Same iceberg answer from both strategies.
    assert ii.to_dict() == cb.to_dict()
    # The iceberg is a small tip of the full cuboid.
    assert len(ii) < len(full) / 2
    # Pruning actually removed lists between join steps.
    pruned = int(stats.extra.get("lists_pruned", 0))
    assert pruned > 0
    with capsys.disabled():
        print(
            f"\nIceberg ablation: min_support={MIN_SUPPORT}: "
            f"{len(ii)} cells (full {len(full)}), {pruned} lists pruned\n"
        )
