"""QuerySet C — restricted pattern template (X, Y, Y, X) (summarized, §5.2).

The repeated-symbol chain (X, Y) -> (X, Y, Y) -> (X, Y, Y, X) exercises
the join + verification machinery with symbol-equality constraints.  The
paper reports the results are "consistent with the discussion in Section
4.2": II reuses the chain's intermediate indices while CB rescans, and
P-ROLL-UP by merging would be invalid here (the engine must fall back).
"""

import pytest

from repro.bench import comparison_table, run_queryset_c
from repro.core import operations as ops
from repro.core.inverted_index import rollup_by_merge_is_valid
from repro.datagen.synthetic import base_spec
from repro import SOLAPEngine


@pytest.fixture(scope="module")
def runs(synthetic_db_base):
    cb, __ = run_queryset_c(synthetic_db_base, "cb")
    ii, __ = run_queryset_c(synthetic_db_base, "ii")
    return cb, ii


@pytest.mark.parametrize("strategy", ["cb", "ii"])
def test_queryset_c(benchmark, synthetic_db_base, strategy):
    steps, __ = benchmark.pedantic(
        run_queryset_c,
        args=(synthetic_db_base, strategy),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["scanned"] = sum(s.sequences_scanned for s in steps)


def test_queryset_c_shape(benchmark, runs, synthetic_db_base, capsys):
    cb, ii = runs

    def render():
        return comparison_table(
            [s.label for s in cb],
            cb,
            ii,
            "QuerySet C: restricted template chain to (X, Y, Y, X)",
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")

    d = 5000
    # CB rescans the full dataset thrice.
    assert sum(s.sequences_scanned for s in cb) == 3 * d
    # II: precomputed L2 answers QC1 free; the chain reuses joins.
    assert ii[0].sequences_scanned == 0
    assert sum(s.sequences_scanned for s in ii) < d
    # cells agree step by step
    for a, b in zip(cb, ii):
        assert a.cells == b.cells, a.label


def test_rollup_merge_invalid_for_repeated_symbols(
    benchmark, synthetic_db_base
):
    """The s6 lesson: merging is invalid for (X, Y, Y, X); the engine must
    fall back and still agree with CB after a P-ROLL-UP."""
    spec = base_spec(("X", "Y", "Y", "X"))
    assert not rollup_by_merge_is_valid(spec.template)
    rolled = ops.p_roll_up(spec, "Y", synthetic_db_base.schema)

    def run_both():
        engine = SOLAPEngine(synthetic_db_base)
        engine.execute(spec, "ii")  # warm fine-level indices
        ii, __ = engine.execute(rolled, "ii")
        cb, __ = SOLAPEngine(synthetic_db_base).execute(rolled, "cb")
        return ii, cb

    ii, cb = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert ii.to_dict() == cb.to_dict()
