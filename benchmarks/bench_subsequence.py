"""Subsequence patterns (summarized in §5.2).

The paper states the subsequence-pattern experiments are "consistent with
the discussion in Section 4.2".  We run the QuerySet A chain with
SUBSEQUENCE templates on a shorter-sequence dataset (subsequence
enumeration is combinatorial) and check the same CB-vs-II shape, plus the
semantic relation substring-matches ⊆ subsequence-matches.
"""

import pytest

from repro import SOLAPEngine
from repro.bench import run_queryset_a, series_table
from repro.core.spec import PatternKind
from repro.datagen import SyntheticConfig, generate_event_database
from repro.datagen.synthetic import base_spec


@pytest.fixture(scope="module")
def short_db():
    return generate_event_database(SyntheticConfig(I=100, L=8, theta=0.9, D=1500))


@pytest.fixture(scope="module")
def runs(short_db):
    out = {}
    for strategy in ("cb", "ii"):
        out[strategy], __ = run_queryset_a(
            short_db, strategy, n_queries=4, kind=PatternKind.SUBSEQUENCE
        )
    return out


@pytest.mark.parametrize("strategy", ["cb", "ii"])
def test_subsequence_chain(benchmark, short_db, strategy):
    steps, __ = benchmark.pedantic(
        run_queryset_a,
        args=(short_db, strategy),
        kwargs={"n_queries": 4, "kind": PatternKind.SUBSEQUENCE},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["scanned"] = sum(s.sequences_scanned for s in steps)


def test_subsequence_shape(benchmark, runs, short_db, capsys):
    def render():
        return series_table(
            {s.upper(): runs[s] for s in ("cb", "ii")},
            "Subsequence QuerySet A: cumulative ms (cumulative sequences scanned)",
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")

    # Same qualitative shape as the substring chain.
    assert runs["ii"][0].sequences_scanned == 0
    assert sum(s.sequences_scanned for s in runs["ii"]) < 1500
    assert sum(s.sequences_scanned for s in runs["cb"]) == 4 * 1500
    for a, b in zip(runs["cb"], runs["ii"]):
        assert a.cells == b.cells, a.label


def test_substring_counts_bounded_by_subsequence(benchmark, short_db):
    """Every substring occurrence is a subsequence occurrence, so per-cell
    subsequence counts dominate substring counts."""

    def compute():
        sub = SOLAPEngine(short_db).execute(base_spec(("X", "Y")), "cb")[0]
        sup = SOLAPEngine(short_db).execute(
            base_spec(("X", "Y"), kind=PatternKind.SUBSEQUENCE), "cb"
        )[0]
        return sub, sup

    sub, sup = benchmark.pedantic(compute, rounds=1, iterations=1)
    for (g, cell), values in sub.to_dict().items():
        assert sup.count(cell, g) >= values["COUNT(*)"]
