"""QuerySet B — P-ROLL-UP / P-DRILL-DOWN over a 3-level hierarchy (§5.2).

Paper setup: 100 symbols -> 20 groups -> 5 super-groups (Zipf θ=0.9 at
both splits); QB1 = (X, Y, Z) at the middle level (precomputed L3);
QB2 = subcube on the heaviest X + P-DRILL-DOWN X; QB3 = same subcube +
P-ROLL-UP Y.

Paper's conclusions: (1) on QB2 (an unselective drill-down) CB and II are
comparable because II must scan many sequences to refine its lists;
(2) on QB3 II beats CB in all datasets because the answer comes from
merging lists without scanning.
"""

import pytest

from repro.bench import comparison_table, run_queryset_b
from benchmarks.conftest import FIG16_D_SERIES


@pytest.fixture(scope="module")
def runs(synthetic_dbs):
    out = {}
    for d, db in synthetic_dbs.items():
        out[("cb", d)], __ = run_queryset_b(db, "cb")
        out[("ii", d)], __ = run_queryset_b(db, "ii")
    return out


@pytest.mark.parametrize("d", FIG16_D_SERIES)
@pytest.mark.parametrize("strategy", ["cb", "ii"])
def test_queryset_b(benchmark, synthetic_dbs, strategy, d):
    steps, __ = benchmark.pedantic(
        run_queryset_b,
        args=(synthetic_dbs[d], strategy),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["scanned"] = sum(s.sequences_scanned for s in steps)


def test_queryset_b_shape(benchmark, runs, capsys):
    def render():
        blocks = []
        for d in FIG16_D_SERIES:
            cb, ii = runs[("cb", d)], runs[("ii", d)]
            blocks.append(
                comparison_table(
                    [s.label for s in cb],
                    cb,
                    ii,
                    f"QuerySet B, D={d}",
                )
            )
        return "\n\n".join(blocks)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")

    for d in FIG16_D_SERIES:
        cb = {s.label: s for s in runs[("cb", d)]}
        ii = {s.label: s for s in runs[("ii", d)]}
        rollup = "QB3 (roll-up Y)"
        drill = "QB2 (drill-down X)"
        # (2) P-ROLL-UP: II merges lists — zero scans; CB rescans all.
        assert ii[rollup].sequences_scanned == 0
        assert cb[rollup].sequences_scanned == d
        # (1) P-DRILL-DOWN on the heaviest subcube is unselective: II must
        # scan a large fraction of the dataset (comparable to CB).
        assert ii[drill].sequences_scanned > 0
        assert ii[drill].sequences_scanned <= cb[drill].sequences_scanned
        # cells agree between strategies on every step
        for label in cb:
            assert cb[label].cells == ii[label].cells, (d, label)
