#!/usr/bin/env python
"""Unified benchmark runner: one machine-readable ``BENCH_<date>.json``.

Executes the repository's benchmark workloads (the same drivers the
``bench_*`` pytest modules exercise) against pinned synthetic datasets
with fixed seeds, repeats each several times, and emits a
schema-versioned JSON document with per-benchmark p50/p95 wall times,
deterministic work counters (sequences scanned, index bytes built), the
CB-vs-II crossover summary for the iterative QuerySet A chain, and a
machine fingerprint.  ``benchmarks/compare.py`` diffs two such files and
gates CI on regressions.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --out BENCH_ci.json
    PYTHONPATH=src python benchmarks/run_all.py            # full sizes

The ``--quick`` profile is sized for CI (< ~1 minute); the full profile
matches the pytest benchmark suite's dataset sizes.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pickle
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent
if not any(
    (Path(entry) / "repro").is_dir() for entry in sys.path if entry
):  # pragma: no cover - convenience for bare invocations
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro import build_sequence_groups  # noqa: E402
from repro.bench.workloads import (  # noqa: E402
    run_clickstream_exploration,
    run_queryset_a,
    run_queryset_b,
    run_queryset_c,
)
from repro.core.matcher import kernel_mode, make_matcher  # noqa: E402
from repro.datagen import (  # noqa: E402
    ClickstreamConfig,
    SyntheticConfig,
    generate_clickstream,
    generate_event_database,
    remove_crawler_sessions,
)
from repro.datagen.synthetic import base_spec  # noqa: E402
from repro.index.inverted import (  # noqa: E402
    build_index,
    join_indices,
    pair_template,
    prefix_template,
)
from repro import SOLAPEngine  # noqa: E402
from repro.storage import StorageManager  # noqa: E402

#: bump when the emitted document's shape changes incompatibly
#: (2: added matcher_kernel_* / join_intersect_* micro-bench sections;
#:  3: added storage_attach_* segment-store sections;
#:  4: added shards_scatter_gather_n* sections;
#:  5: added tracing_overhead_* sections;
#:  6: added cache_replay_{lru,semantic} sections)
BENCH_SCHEMA = 6


class BenchCase:
    """One named benchmark: a driver over a pinned dataset."""

    def __init__(
        self,
        name: str,
        module: str,
        dataset: str,
        runner: Callable[[object], List[object]],
    ):
        self.name = name
        self.module = module
        self.dataset = dataset
        self.runner = runner


def _steps_of(result):
    """Drivers return either [steps] or ([steps], precompute_stats)."""
    if isinstance(result, tuple):
        return result[0]
    return result


def build_cases(quick: bool) -> List[BenchCase]:
    n_queries = 4 if quick else 5
    return [
        BenchCase(
            "table1_clickstream_cb",
            "benchmarks/bench_table1_clickstream.py",
            "clickstream",
            lambda db: _steps_of(run_clickstream_exploration(db, "cb")),
        ),
        BenchCase(
            "table1_clickstream_ii",
            "benchmarks/bench_table1_clickstream.py",
            "clickstream",
            lambda db: _steps_of(run_clickstream_exploration(db, "ii")),
        ),
        BenchCase(
            "queryset_a_cb",
            "benchmarks/bench_fig16_queryset_a_varying_d.py",
            "synthetic",
            lambda db: _steps_of(run_queryset_a(db, "cb", n_queries=n_queries)),
        ),
        BenchCase(
            "queryset_a_ii",
            "benchmarks/bench_fig16_queryset_a_varying_d.py",
            "synthetic",
            lambda db: _steps_of(run_queryset_a(db, "ii", n_queries=n_queries)),
        ),
        BenchCase(
            "queryset_b_cb",
            "benchmarks/bench_queryset_b_rollup_drilldown.py",
            "synthetic",
            lambda db: _steps_of(run_queryset_b(db, "cb")),
        ),
        BenchCase(
            "queryset_b_ii",
            "benchmarks/bench_queryset_b_rollup_drilldown.py",
            "synthetic",
            lambda db: _steps_of(run_queryset_b(db, "ii")),
        ),
        BenchCase(
            "queryset_c_cb",
            "benchmarks/bench_queryset_c_restricted.py",
            "synthetic",
            lambda db: _steps_of(run_queryset_c(db, "cb")),
        ),
        BenchCase(
            "queryset_c_ii",
            "benchmarks/bench_queryset_c_restricted.py",
            "synthetic",
            lambda db: _steps_of(run_queryset_c(db, "ii")),
        ),
    ]


def build_datasets(quick: bool) -> Dict[str, object]:
    """The pinned (fixed-seed) benchmark datasets."""
    synthetic = generate_event_database(
        SyntheticConfig(I=100, L=20, theta=0.9, D=500 if quick else 2000)
    )
    clickstream = remove_crawler_sessions(
        generate_clickstream(
            ClickstreamConfig(
                n_sessions=1200 if quick else 5000,
                seed=2000,
                p_start_assortment=0.18,
                p_assortment_to_legwear=0.28,
            )
        )
    )
    return {"synthetic": synthetic, "clickstream": clickstream}


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 1]) of a small sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def run_case(case: BenchCase, db, repeats: int) -> dict:
    """Run one case *repeats* times; wall time per run, counters once."""
    runs_ms: List[float] = []
    counters: Optional[dict] = None
    for __ in range(repeats):
        start = time.perf_counter()
        steps = case.runner(db)
        runs_ms.append((time.perf_counter() - start) * 1000.0)
        if counters is None:
            counters = {
                "steps": len(steps),
                "sequences_scanned": sum(s.sequences_scanned for s in steps),
                "index_bytes_built": sum(s.index_bytes_built for s in steps),
                "cells": sum(s.cells for s in steps),
            }
    return {
        "module": case.module,
        "dataset": case.dataset,
        "runs_ms": [round(ms, 3) for ms in runs_ms],
        "p50_ms": round(percentile(runs_ms, 0.50), 3),
        "p95_ms": round(percentile(runs_ms, 0.95), 3),
        "mean_ms": round(statistics.fmean(runs_ms), 3),
        "counters": counters,
    }


def build_micro_benches(datasets: Dict[str, object]) -> Dict[str, tuple]:
    """Kernel micro-benchmarks isolating the matcher and join inner loops.

    ``matcher_kernel_*`` times one full scan of the synthetic sequences
    through the compiled (dictionary-encoded) vs legacy (value-space)
    matcher; ``join_intersect_*`` times one L2 ⋈ L2 join with the
    intersection kernel pinned to sorted galloping vs bitmap AND.  The
    sequence pipeline and index builds happen outside the timed region so
    the sections measure exactly the kernels.

    Returns ``name -> (dataset, fn)`` where ``fn()`` performs one timed
    run and returns its deterministic counters.
    """
    synthetic = datasets["synthetic"]
    spec = base_spec(("X", "Y", "Z"))
    groups = build_sequence_groups(
        synthetic, None, list(spec.cluster_by), list(spec.sequence_by)
    )
    sequences = list(groups.all_sequences())

    def matcher_scan(mode: str):
        def run() -> dict:
            with kernel_mode(mode):
                matcher = make_matcher(
                    spec.template, synthetic.schema, db=synthetic
                )
                cells = 0
                for sequence in sequences:
                    cells += len(matcher.assignments(sequence))
            return {"sequences_scanned": len(sequences), "cells": cells}

        return run

    group = groups.single_group()
    left = build_index(group, prefix_template(spec.template, 2), synthetic.schema)
    pair = build_index(group, pair_template(spec.template, 1), synthetic.schema)
    target = prefix_template(spec.template, 3)

    def join_run(kernel: str):
        def run() -> dict:
            joined = join_indices(
                left, pair, target, synthetic.schema, kernel=kernel
            )
            return {
                "cells": len(joined),
                "index_bytes_built": joined.size_bytes(),
            }

        return run

    return {
        "matcher_kernel_compiled": ("synthetic", matcher_scan("auto")),
        "matcher_kernel_legacy": ("synthetic", matcher_scan("legacy")),
        "join_intersect_sorted": ("synthetic", join_run("sorted")),
        "join_intersect_bitmap": ("synthetic", join_run("bitmap")),
    }


def run_micro(fn, dataset: str, repeats: int) -> dict:
    """Time one micro-bench *repeats* times (same shape as ``run_case``)."""
    runs_ms: List[float] = []
    counters: Optional[dict] = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        runs_ms.append((time.perf_counter() - start) * 1000.0)
        if counters is None:
            counters = result
    return {
        "module": "benchmarks/run_all.py",
        "dataset": dataset,
        "runs_ms": [round(ms, 3) for ms in runs_ms],
        "p50_ms": round(percentile(runs_ms, 0.50), 3),
        "p95_ms": round(percentile(runs_ms, 0.95), 3),
        "mean_ms": round(statistics.fmean(runs_ms), 3),
        "counters": counters,
    }


def build_storage_benches(quick: bool, root: Path) -> Dict[str, tuple]:
    """Segment-store benchmarks: worker cold-start and steady-state scans.

    ``storage_attach_pickle_ship`` is the cost a spawn-started process
    worker pays today for an in-memory database: serialise every column,
    ship the blob, rebuild it on the other side (measured in-process as
    ``pickle.dumps`` + ``pickle.loads`` — the IPC copy only adds to it).
    ``storage_attach_mmap`` is the same readiness milestone for a segment
    store: open the manifest, validate two fixed-size records per segment
    and ``mmap`` the columns — O(1) in the data size.  The quick profile
    uses D=2000 sequences; the full profile D=100000 (the issue's 10^5
    acceptance point).

    ``storage_scan_memory`` / ``storage_scan_segment`` run the identical
    CB query over both representations; their deterministic counters must
    match exactly (zero work-counter drift) and the wall times bound the
    steady-state price of reading through the mapped columns.
    """
    config = SyntheticConfig(I=100, L=10, theta=0.9, D=2000 if quick else 100_000)
    db = generate_event_database(config)
    spec = base_spec(("X", "Y"))
    store_root = root / "store"
    manager = StorageManager.write(
        db,
        store_root,
        cluster_by=spec.cluster_by,
        sequence_by=spec.sequence_by,
    )
    manager.attach()  # touch every column once so mmap pages are warm

    def pickle_ship() -> dict:
        blob = pickle.dumps(db)
        shipped = pickle.loads(blob)
        return {"events": len(shipped), "blob_bytes": len(blob)}

    def mmap_attach() -> dict:
        # a fresh manager each run: the per-process memo would otherwise
        # reduce this to a dict lookup and measure nothing
        attached_manager = StorageManager.open(store_root)
        attached = attached_manager.attach()
        return {
            "events": len(attached),
            "blob_bytes": len(pickle.dumps(attached)),
        }

    def scan(database):
        def run() -> dict:
            cuboid, stats = SOLAPEngine(database).execute(spec, "cb")
            return {
                "sequences_scanned": stats.sequences_scanned,
                "cells": len(cuboid),
            }

        return run

    return {
        "storage_attach_pickle_ship": ("storage_synthetic", pickle_ship),
        "storage_attach_mmap": ("storage_synthetic", mmap_attach),
        "storage_scan_memory": ("storage_synthetic", scan(db)),
        "storage_scan_segment": ("storage_synthetic", scan(manager.attach())),
    }


def build_shard_benches(datasets: Dict[str, object]) -> Dict[str, tuple]:
    """Scatter-gather benchmarks at fan-outs 1/2/4/8 (inline execution).

    Each section runs the same CB query through a
    :class:`~repro.shard.ScatterGatherCoordinator` with N logical shards
    on the serial (inline) backend, so the wall times isolate the
    plan/scatter/merge overhead from pool parallelism and the
    deterministic counters prove zero work drift: every fan-out scans
    exactly the sequences the single-shard scan does and produces the
    same cell count.  ``benchmarks/bench_shards.py`` is the companion
    that measures actual multi-core speedup on the process backend.
    """
    from repro.shard import ScatterGatherCoordinator

    synthetic = datasets["synthetic"]
    spec = base_spec(("X", "Y"))

    def sharded_scan(shards: int):
        def run() -> dict:
            engine = SOLAPEngine(synthetic, use_repository=False)
            engine.scatter_gather = ScatterGatherCoordinator(
                shards, min_sequences=1
            )
            cuboid, stats = engine.execute(spec, "cb")
            return {
                "sequences_scanned": stats.sequences_scanned,
                "cells": len(cuboid),
                "fanout": stats.extra.get("shard_fanout", 0),
            }

        return run

    return {
        f"shards_scatter_gather_n{n}": ("synthetic", sharded_scan(n))
        for n in (1, 2, 4, 8)
    }


def build_tracing_benches(datasets: Dict[str, object]) -> Dict[str, tuple]:
    """Tracing overhead on the hot query path, at three levels.

    ``tracing_overhead_disabled`` runs a CB query with no tracer active —
    each instrumented site costs one context-var read plus an identity
    check; ``tracing_overhead_spans`` runs the same query under
    ``analyze=True`` so every stage span is recorded;
    ``tracing_overhead_recorder`` additionally records the finished
    trace (trace JSON + resource profile + plan) into a
    :class:`~repro.obs.recorder.FlightRecorder` ring, the full
    always-on flight-recorder cost.  Comparing the three p50s bounds
    what permanent instrumentation costs a query; the deterministic
    counters pin that tracing never changes the work done.
    """
    from repro.obs.recorder import FlightRecorder

    synthetic = datasets["synthetic"]
    spec = base_spec(("X", "Y"))

    def traced_query(analyze: bool, record: bool):
        def run() -> dict:
            engine = SOLAPEngine(synthetic, use_repository=False)
            cuboid, stats = engine.execute(spec, "cb", analyze=analyze)
            counters = {
                "sequences_scanned": stats.sequences_scanned,
                "cells": len(cuboid),
                "spans": (
                    sum(1 for __ in stats.trace.walk()) if stats.trace else 0
                ),
            }
            if record:
                recorder = FlightRecorder(capacity=4)
                counters["recorded"] = int(
                    recorder.record(stats=stats, query_id="bench") is not None
                )
            return counters

        return run

    return {
        "tracing_overhead_disabled": (
            "synthetic", traced_query(False, False),
        ),
        "tracing_overhead_spans": ("synthetic", traced_query(True, False)),
        "tracing_overhead_recorder": ("synthetic", traced_query(True, True)),
    }


def build_cache_replay_benches() -> Dict[str, tuple]:
    """Iterative-exploration replay: semantic cuboid cache vs plain LRU.

    Replays the pinned-seed session from
    :mod:`repro.bench.cache_replay` on a fresh engine per run, once with
    the exact-key LRU repository only and once with the semantic cache
    (derivations from cached cuboids) enabled.  The deterministic
    counters pin the hit mix (``exact_hits`` / ``derived_hits``) and the
    total scan work; ``work_drift`` must stay 0 — cache answers never
    touch base data.  The wall-time comparison between the two sections
    is the hit-rate/p50 story; the hard bit-identity gate lives in
    ``benchmarks/bench_cache_replay.py --check``.
    """
    from repro.bench.cache_replay import build_replay_db, replay_counters

    replay_db = build_replay_db(120)
    return {
        "cache_replay_lru": (
            "cache_replay", lambda: replay_counters(replay_db, semantic=False),
        ),
        "cache_replay_semantic": (
            "cache_replay", lambda: replay_counters(replay_db, semantic=True),
        ),
    }


def crossover_summary(db, n_queries: int) -> dict:
    """Cumulative CB-vs-II runtimes along QuerySet A and the crossover step.

    The paper's Figure 16 story: CB's cumulative cost grows linearly with
    the chain while II amortises its index builds, so past some step the
    II curve dips below CB.  Reported per-step so the comparator can
    check the *shape*, not just a scalar.
    """
    cb_steps = _steps_of(run_queryset_a(db, "cb", n_queries=n_queries))
    ii_steps = _steps_of(run_queryset_a(db, "ii", n_queries=n_queries))

    def cumulative(steps):
        total = 0.0
        out = []
        for step in steps:
            total += step.runtime_ms
            out.append(round(total, 3))
        return out

    cb_cum = cumulative(cb_steps)
    ii_cum = cumulative(ii_steps)
    crossover_step = None
    for index, (cb, ii) in enumerate(zip(cb_cum, ii_cum)):
        if ii < cb:
            crossover_step = index + 1
            break
    return {
        "labels": [step.label for step in cb_steps],
        "cb_cumulative_ms": cb_cum,
        "ii_cumulative_ms": ii_cum,
        "crossover_step": crossover_step,
    }


def machine_fingerprint() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def run_all(quick: bool, repeats: int, crossover_queries: int) -> dict:
    datasets = build_datasets(quick)
    document = {
        "bench_schema": BENCH_SCHEMA,
        "generated_by": "benchmarks/run_all.py",
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": quick,
        "repeats": repeats,
        "machine": machine_fingerprint(),
        "benchmarks": {},
    }
    for case in build_cases(quick):
        print(f"  running {case.name} ...", flush=True)
        document["benchmarks"][case.name] = run_case(
            case, datasets[case.dataset], repeats
        )
    for name, (dataset, fn) in build_micro_benches(datasets).items():
        print(f"  running {name} ...", flush=True)
        document["benchmarks"][name] = run_micro(fn, dataset, repeats)
    for name, (dataset, fn) in build_shard_benches(datasets).items():
        print(f"  running {name} ...", flush=True)
        document["benchmarks"][name] = run_micro(fn, dataset, repeats)
    for name, (dataset, fn) in build_tracing_benches(datasets).items():
        print(f"  running {name} ...", flush=True)
        document["benchmarks"][name] = run_micro(fn, dataset, repeats)
    for name, (dataset, fn) in build_cache_replay_benches().items():
        print(f"  running {name} ...", flush=True)
        document["benchmarks"][name] = run_micro(fn, dataset, repeats)
    with tempfile.TemporaryDirectory(prefix="solap-bench-store-") as tmp:
        for name, (dataset, fn) in build_storage_benches(
            quick, Path(tmp)
        ).items():
            print(f"  running {name} ...", flush=True)
            document["benchmarks"][name] = run_micro(fn, dataset, repeats)
    print("  running crossover summary ...", flush=True)
    document["crossover"] = {
        "queryset_a": crossover_summary(
            datasets["synthetic"], crossover_queries
        )
    }
    return document


def default_output_path() -> Path:
    stamp = datetime.date.today().isoformat()
    return Path(f"BENCH_{stamp}.json")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI profile: smaller pinned datasets and fewer repeats",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="runs per benchmark (default: 3 quick, 5 full)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output file (default: ./BENCH_<date>.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.quick else 5)
    out = args.out or default_output_path()

    started = time.perf_counter()
    document = run_all(args.quick, repeats, crossover_queries=4)
    elapsed = time.perf_counter() - started
    document["runner_seconds"] = round(elapsed, 3)

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    print(
        f"wrote {out} ({len(document['benchmarks'])} benchmarks, "
        f"{elapsed:.1f}s total)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
