"""Semantic-cache replay — iterative exploration, semantic vs plain LRU.

Replays the pinned-seed exploration session from
:mod:`repro.bench.cache_replay` (12 queries: 2 cold views, 3 revisits,
7 steps reachable from earlier answers via P-ROLL-UP / global roll-up /
slice / dice) against two fresh engines:

* **lru** — exact-cache-key repository only (the pre-semantic-cache
  behaviour): every non-verbatim step recomputes from scratch.
* **semantic** — the :class:`~repro.optimizer.semantic_cache.DerivationPlanner`
  consulted on exact-key misses, benefit-weighted eviction.

Shape claims (the ISSUE acceptance bar):

* the semantic replay answers strictly more queries from cache
  (hit-rate win) and has a lower per-query p50;
* every derived answer is bit-identical to a cold, repository-free
  recomputation of the same spec;
* exact and derived answers report zero work-counter drift (no sequence
  scans, no index builds).

Run as a script for the comparison table, or with ``--check`` as the CI
gate (exits non-zero on any bit-identity or drift violation)::

    PYTHONPATH=src python benchmarks/bench_cache_replay.py --check
"""

from __future__ import annotations

import pytest

from repro.bench.cache_replay import (
    build_replay_db,
    run_replay,
    verify_bit_identity,
)

BENCH_D = 120  # sequences; small — this bench isolates cache behaviour


@pytest.fixture(scope="module")
def replay_db():
    return build_replay_db(BENCH_D)


def test_semantic_beats_lru_hit_rate(replay_db):
    lru = run_replay(replay_db, semantic=False)
    semantic = run_replay(replay_db, semantic=True)
    assert semantic["hit_rate"] > lru["hit_rate"]
    assert semantic["derived_hits"] >= 5
    assert semantic["misses"] < lru["misses"]


def test_semantic_answers_bit_identical(replay_db):
    report = run_replay(replay_db, semantic=True)
    assert verify_bit_identity(replay_db, report) == []


def test_zero_work_counter_drift(replay_db):
    for semantic in (False, True):
        report = run_replay(replay_db, semantic=semantic)
        assert report["work_drift"] == 0


def test_semantic_scans_less(replay_db):
    lru = run_replay(replay_db, semantic=False)
    semantic = run_replay(replay_db, semantic=True)
    assert semantic["sequences_scanned"] < lru["sequences_scanned"]


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sequences", type=int, default=BENCH_D, help="dataset size (D)"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="replay repetitions per mode"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit non-zero unless every derived answer is "
        "bit-identical to cold recomputation with zero counter drift "
        "and the semantic replay beats plain LRU",
    )
    args = parser.parse_args(argv)

    db = build_replay_db(args.sequences)
    reports = {}
    for mode, semantic in (("lru", False), ("semantic", True)):
        runs = [run_replay(db, semantic) for __ in range(max(1, args.repeat))]
        best = min(runs, key=lambda r: r["total_ms"])
        reports[mode] = best
        print(
            f"{mode:9s} hit-rate={best['hit_rate']:.2f} "
            f"(exact={best['exact_hits']}, derived={best['derived_hits']}, "
            f"miss={best['misses']})  p50={best['p50_ms']:.2f}ms  "
            f"total={best['total_ms']:.1f}ms  "
            f"scans={best['sequences_scanned']}  drift={best['work_drift']}"
        )
    semantic = reports["semantic"]
    print("\nsemantic replay steps:")
    for step in semantic["steps"]:
        print(
            f"  {step['label']:22s} {step['answer']:30s} "
            f"{step['wall_ms']:7.2f}ms scans={step['sequences_scanned']}"
        )

    mismatches = verify_bit_identity(db, semantic)
    print(
        f"\nbit-identity vs cold recomputation: "
        f"{'OK' if not mismatches else 'FAILED ' + repr(mismatches)}"
    )
    if not args.check:
        return 0
    failures = []
    if mismatches:
        failures.append(f"derived answers differ from cold: {mismatches}")
    for mode, report in reports.items():
        if report["work_drift"]:
            failures.append(f"{mode}: {report['work_drift']} hits reported scan work")
    if semantic["hit_rate"] <= reports["lru"]["hit_rate"]:
        failures.append("semantic hit-rate does not beat plain LRU")
    if semantic["p50_ms"] >= reports["lru"]["p50_ms"]:
        failures.append("semantic p50 does not beat plain LRU")
    for failure in failures:
        print(f"GATE FAILURE: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
