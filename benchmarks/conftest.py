"""Shared fixtures for the benchmark suite.

Dataset sizes are scaled from the paper's (100k-1M sequences on a C++
prototype) to pure-Python-friendly sizes; every generator parameter is a
fixture so a run on larger hardware can scale up by editing one number.
The qualitative claims (who wins, where, by what shape) are asserted in
the benchmarks themselves.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    ClickstreamConfig,
    SyntheticConfig,
    generate_clickstream,
    generate_event_database,
    remove_crawler_sessions,
)

#: Figure 16's D series, scaled 50x down (paper: 100k / 500k / 1000k).
FIG16_D_SERIES = (2000, 5000, 10000)

#: QuerySet A (b)'s L series (paper: varying average sequence length).
VARY_L_SERIES = (10, 20, 40)

#: θ and I series for the summarized sensitivity experiments.
VARY_THETA_SERIES = (0.5, 0.9, 1.2)
VARY_I_SERIES = (50, 100, 200)


@pytest.fixture(scope="session")
def synthetic_dbs():
    """I100.L20.θ0.9.Dx databases for the Figure 16 series."""
    return {
        d: generate_event_database(SyntheticConfig(I=100, L=20, theta=0.9, D=d))
        for d in FIG16_D_SERIES
    }


@pytest.fixture(scope="session")
def synthetic_db_base(synthetic_dbs):
    """The middle-size dataset used by single-dataset experiments."""
    return synthetic_dbs[FIG16_D_SERIES[1]]


@pytest.fixture(scope="session")
def vary_l_dbs():
    """I100.Lx.θ0.9.D2000 databases for the varying-L experiment."""
    return {
        l: generate_event_database(SyntheticConfig(I=100, L=l, theta=0.9, D=2000))
        for l in VARY_L_SERIES
    }


@pytest.fixture(scope="session")
def vary_theta_dbs():
    return {
        theta: generate_event_database(
            SyntheticConfig(I=100, L=20, theta=theta, D=2000)
        )
        for theta in VARY_THETA_SERIES
    }


@pytest.fixture(scope="session")
def vary_i_dbs():
    return {
        i: generate_event_database(SyntheticConfig(I=i, L=20, theta=0.9, D=2000))
        for i in VARY_I_SERIES
    }


@pytest.fixture(scope="session")
def clickstream_db():
    """The Gazelle-shaped clickstream, crawler-filtered (Section 5.1).

    The transition skew is set so the sliced (Assortment, Legwear) cell
    holds a few percent of the sessions, matching the paper's selectivity
    (2,201 of 50,524 ≈ 4.4%).
    """
    raw = generate_clickstream(
        ClickstreamConfig(
            n_sessions=5000,
            seed=2000,
            p_start_assortment=0.18,
            p_assortment_to_legwear=0.28,
        )
    )
    return remove_crawler_sessions(raw)
