"""Domain bench — bulky RFID movement and roll-up behaviour.

The related work ([6], [7] in the paper) builds special-purpose RFID
warehouses around the *bulky movement* property: items travel in lots, so
coarser location levels collapse the flow distribution dramatically.
This bench shows the generic S-OLAP engine capturing the same effect:

* cell counts collapse super-linearly from reader → zone → site;
* the II strategy answers each roll-up by merging lists with zero
  sequence scans (the distribution-friendly case of Section 4.2.2);
* CB re-scans the whole item population at every level.
"""

import pytest

from repro import SOLAPEngine
from repro.core import operations as ops
from repro.datagen import RFIDConfig, generate_rfid, rfid_path_spec


@pytest.fixture(scope="module")
def db():
    return generate_rfid(RFIDConfig(n_lots=150, lot_size=12, seed=41))


def rollup_chain(db, strategy):
    engine = SOLAPEngine(db, use_repository=False)
    spec = rfid_path_spec("reader")
    results = []
    for label in ("reader", "zone", "site"):
        cuboid, stats = engine.execute(spec, strategy)
        results.append((label, len(cuboid), stats.sequences_scanned,
                        stats.runtime_seconds * 1000))
        if label != "site":
            spec = ops.p_roll_up(ops.p_roll_up(spec, "X", db.schema), "Y", db.schema)
    return results


@pytest.mark.parametrize("strategy", ["cb", "ii"])
def test_rfid_rollup_chain(benchmark, db, strategy):
    results = benchmark.pedantic(
        rollup_chain, args=(db, strategy), rounds=1, iterations=1
    )
    benchmark.extra_info["cells"] = [cells for __, cells, __s, __m in results]


def test_rfid_shape(benchmark, db, capsys):
    def both():
        return rollup_chain(db, "cb"), rollup_chain(db, "ii")

    cb, ii = benchmark.pedantic(both, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nBulky-movement roll-up chain (level, cells, scanned, ms):")
        for label, rows in (("CB", cb), ("II", ii)):
            for level, cells, scanned, ms in rows:
                print(f"  {label} {level:>6}: {cells:5d} cells, "
                      f"{scanned:5d} scanned, {ms:8.1f} ms")
        print()
    n_items = 150 * 12
    # cells collapse super-linearly up the hierarchy
    cells = {level: c for level, c, __s, __m in cb}
    assert cells["reader"] > cells["zone"] > cells["site"]
    assert cells["site"] <= 10
    # CB rescans all items at every level; II merges with zero scans after
    # the first level's index exists.
    assert all(scanned == n_items for __, __c, scanned, __m in cb)
    assert ii[1][2] == 0 and ii[2][2] == 0
    # counts agree between strategies at every level
    for (l1, c1, __a, __b), (l2, c2, __c2, __d) in zip(cb, ii):
        assert (l1, c1) == (l2, c2)
