"""QuerySet A (b) — varying average sequence length L (summarized in §5.2).

Paper's conclusions on I100.Lx.θ0.9.D500K: (1) both CB and II scale
linearly with L; (2) II outperforms CB on every dataset.
"""

import pytest

from repro.bench import run_queryset_a, series_table
from benchmarks.conftest import VARY_L_SERIES


@pytest.fixture(scope="module")
def all_runs(vary_l_dbs):
    runs = {}
    for l, db in vary_l_dbs.items():
        runs[("cb", l)], __ = run_queryset_a(db, "cb", n_queries=5)
        runs[("ii", l)], __ = run_queryset_a(db, "ii", n_queries=5)
    return runs


@pytest.mark.parametrize("l", VARY_L_SERIES)
@pytest.mark.parametrize("strategy", ["cb", "ii"])
def test_queryset_a_vary_l(benchmark, vary_l_dbs, strategy, l):
    steps, __ = benchmark.pedantic(
        run_queryset_a,
        args=(vary_l_dbs[l], strategy),
        kwargs={"n_queries": 5},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cumulative_scanned"] = sum(
        s.sequences_scanned for s in steps
    )


def test_vary_l_shape(benchmark, all_runs, capsys):
    def render():
        return series_table(
            {
                f"{strategy.upper()} L={l}": all_runs[(strategy, l)]
                for strategy in ("cb", "ii")
                for l in VARY_L_SERIES
            },
            "QuerySet A varying L: cumulative ms (cumulative sequences scanned)",
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")

    for l in VARY_L_SERIES:
        cb_total = sum(s.runtime_ms for s in all_runs[("cb", l)])
        ii_total = sum(s.runtime_ms for s in all_runs[("ii", l)])
        # (2) II outperforms CB at every L.
        assert ii_total < cb_total, l
    # (1) CB grows with L but stays near-linear (within 3x of the L ratio).
    l_lo, l_hi = VARY_L_SERIES[0], VARY_L_SERIES[-1]
    lo = sum(s.runtime_ms for s in all_runs[("cb", l_lo)])
    hi = sum(s.runtime_ms for s in all_runs[("cb", l_hi)])
    assert hi > lo  # more events -> more work
    assert hi / max(lo, 1e-9) < (l_hi / l_lo) * 3
