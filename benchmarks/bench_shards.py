"""Scatter-gather sharding — fan-out 1 / 2 / 4 / 8 on a pinned workload.

Measures the :mod:`repro.shard` scatter-gather path: one CB query over a
pinned-seed synthetic dataset, consistent-hashed onto N logical shards
and merged back under the aggregate algebra.  Shape claims:

* **bit-identity** — every fan-out, on every backend, returns exactly the
  single-shard serial cells (COUNT and integer measures merge exactly);
* **zero work drift** — the merged ``sequences_scanned`` equals the
  serial scan's (every sequence scanned once, on exactly one shard);
* **near-linear scaling** on the process backend when cores are
  available: with W workers, fan-out N <= W should approach min(N, cores)
  speedup over the N=1 scatter.  On a single-CPU host the speedup column
  degenerates to ~1.0x and only the identity/drift claims are asserted.

The pytest half doubles as the CI smoke benchmark (small D); script mode
prints the speedup table::

    PYTHONPATH=src python benchmarks/bench_shards.py --workers 4
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import SOLAPEngine
from repro.datagen import SyntheticConfig, generate_event_database
from repro.datagen.synthetic import base_spec
from repro.service import QueryService, ServiceConfig
from repro.shard import ScatterGatherCoordinator

#: sequences in the benchmark dataset (pinned seed)
SHARD_BENCH_D = 800
#: the fan-out series (the ISSUE's N in {1, 2, 4, 8})
SHARD_SERIES = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def shard_db():
    return generate_event_database(
        SyntheticConfig(I=100, L=20, theta=0.9, D=SHARD_BENCH_D)
    )


@pytest.fixture(scope="module")
def serial_result(shard_db):
    spec = base_spec(("X", "Y"))
    cuboid, stats = SOLAPEngine(shard_db, use_repository=False).execute(
        spec, "cb"
    )
    return spec, cuboid, stats


@pytest.mark.parametrize("shards", SHARD_SERIES)
def test_scatter_gather_fanout(benchmark, shard_db, serial_result, shards):
    spec, serial_cuboid, serial_stats = serial_result

    def run():
        engine = SOLAPEngine(shard_db, use_repository=False)
        engine.scatter_gather = ScatterGatherCoordinator(
            shards, min_sequences=1
        )
        return engine.execute(spec, "cb")

    cuboid, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cuboid.to_dict() == serial_cuboid.to_dict()
    assert stats.sequences_scanned == serial_stats.sequences_scanned
    assert stats.extra["shard_fanout"] == min(shards, SHARD_BENCH_D)
    benchmark.extra_info["fanout"] = stats.extra["shard_fanout"]
    benchmark.extra_info["skew"] = stats.extra["shard_skew"]


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_backends_bit_identical(shard_db, serial_result, backend):
    spec, serial_cuboid, serial_stats = serial_result
    config = ServiceConfig(
        max_workers=2,
        executor_backend=backend,
        shards=4,
        parallel_scan_threshold=1,
    )
    service = QueryService(SOLAPEngine(shard_db, use_repository=False), config)
    try:
        cuboid, stats = service.execute(spec, "cb")
    finally:
        service.close()
    assert cuboid.to_dict() == serial_cuboid.to_dict(), backend
    assert stats.sequences_scanned == serial_stats.sequences_scanned
    assert stats.extra.get("shard_fanout") == 4
    assert stats.extra.get("scan_backend") == backend


# ---------------------------------------------------------------------------
# Script mode: the fan-out speedup table
# ---------------------------------------------------------------------------

def _bench_one_fanout(db, spec, shards, workers, backend, repeat):
    """Per-query seconds (and result) for one fan-out configuration."""
    import time

    config = ServiceConfig(
        max_workers=workers,
        executor_backend=backend,
        shards=shards,
        parallel_scan_threshold=10**9,  # isolate scatter-gather from
    )                                   # the parallel CB scanner
    service = QueryService(SOLAPEngine(db, use_repository=False), config)
    try:
        service.execute(spec, "cb")  # warm: sequence formation + pools
        start = time.perf_counter()
        for __ in range(repeat):
            cuboid, stats = service.execute(spec, "cb")
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    return elapsed / repeat, cuboid, stats


def main(argv=None):
    """Print the fan-out speedup table and verify bit-identity."""
    import argparse

    parser = argparse.ArgumentParser(
        description="scatter-gather shard fan-out benchmark"
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="process",
        help="executor backend the shard tasks scatter onto",
    )
    parser.add_argument(
        "--sequences", type=int, default=4000,
        help="synthetic dataset size D (pinned seed)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timed scans per fan-out"
    )
    args = parser.parse_args(argv)

    db = generate_event_database(
        SyntheticConfig(I=100, L=20, theta=0.9, D=args.sequences, seed=42)
    )
    spec = base_spec(("X", "Y"))
    serial, serial_stats = SOLAPEngine(db, use_repository=False).execute(
        spec, "cb"
    )
    print(
        f"shard fan-out: D={args.sequences}, seed=42, "
        f"backend={args.backend}, workers={args.workers}, "
        f"repeat={args.repeat}, cpus={os.cpu_count()}"
    )
    baseline = None
    for shards in SHARD_SERIES:
        seconds, cuboid, stats = _bench_one_fanout(
            db, spec, shards, args.workers, args.backend, args.repeat
        )
        if cuboid.to_dict() != serial.to_dict():
            print(f"FAIL: N={shards} cells differ from serial")
            return 1
        if stats.sequences_scanned != serial_stats.sequences_scanned:
            print(f"FAIL: N={shards} work-counter drift")
            return 1
        if baseline is None:
            baseline = seconds
        speedup = baseline / seconds if seconds else float("inf")
        print(
            f"  N={shards}  {seconds * 1e3:9.1f} ms/query  "
            f"{speedup:5.2f}x vs N=1  "
            f"(skew={stats.extra.get('shard_skew', 0):.2f})"
        )
    print("all fan-outs returned bit-identical cells, zero work drift")
    if os.cpu_count() == 1:
        print(
            "note: single-CPU host — near-linear speedup needs real cores; "
            "identity and drift claims still verified"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
