"""Ablation — precomputed vs on-demand base indices (Section 4.2.2).

The paper notes II's weakness is the start-up cost: without precomputed
indices, the first query pays for index construction ("This affects the
performance of II, particularly in the start-up cost of iterative
queries", and Table 1's Qa where CB beats II).  This ablation quantifies
that trade-off by running the QuerySet A chain with and without the
offline L2 precompute, plus an online-aggregation progress check.
"""

import pytest

from repro import SOLAPEngine
from repro.bench import run_queryset_a
from repro.datagen.synthetic import base_spec
from repro.extensions import online_cuboid


@pytest.fixture(scope="module")
def runs(synthetic_db_base):
    with_pre, pre_stats = run_queryset_a(
        synthetic_db_base, "ii", n_queries=4, precompute=True
    )
    without_pre, __ = run_queryset_a(
        synthetic_db_base, "ii", n_queries=4, precompute=False
    )
    return with_pre, without_pre, pre_stats


def test_with_precompute(benchmark, synthetic_db_base):
    steps, __ = benchmark.pedantic(
        run_queryset_a,
        args=(synthetic_db_base, "ii"),
        kwargs={"n_queries": 4, "precompute": True},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["qa1_scanned"] = steps[0].sequences_scanned


def test_without_precompute(benchmark, synthetic_db_base):
    steps, __ = benchmark.pedantic(
        run_queryset_a,
        args=(synthetic_db_base, "ii"),
        kwargs={"n_queries": 4, "precompute": False},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["qa1_scanned"] = steps[0].sequences_scanned


def test_precompute_shape(benchmark, runs, capsys):
    def noop():
        return runs

    with_pre, without_pre, pre_stats = benchmark.pedantic(
        noop, rounds=1, iterations=1
    )
    # Precompute moves the full scan offline: QA1 goes from a full scan to
    # zero scans.
    assert without_pre[0].sequences_scanned == 5000
    assert with_pre[0].sequences_scanned == 0
    assert pre_stats.sequences_scanned == 5000
    # Either way, follow-up queries stay cheap.
    assert sum(s.sequences_scanned for s in with_pre[1:]) < 5000
    assert sum(s.sequences_scanned for s in without_pre[1:]) < 5000
    with capsys.disabled():
        qa1_cold = without_pre[0].runtime_ms
        qa1_warm = with_pre[0].runtime_ms
        print(
            f"\nPrecompute ablation: QA1 cold {qa1_cold:.1f} ms "
            f"(5000 scanned) vs warm {qa1_warm:.1f} ms (0 scanned)\n"
        )


def test_online_aggregation_progress(benchmark, synthetic_db_base):
    """Online aggregation reaches a stable heavy-hitter early: the top cell
    after 25% of the scan is already the final top cell."""
    spec = base_spec(("X", "Y"))
    engine = SOLAPEngine(synthetic_db_base)
    groups = engine.sequence_groups(spec)

    def run():
        estimates = list(
            online_cuboid(synthetic_db_base, groups, spec, chunk_size=1250)
        )
        return estimates

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    quarter = estimates[0]
    final = estimates[-1]
    assert quarter.fraction == pytest.approx(0.25)
    assert quarter.partial.argmax()[1] == final.partial.argmax()[1]
