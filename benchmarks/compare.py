#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` files and gate on perf regressions.

Compares per-benchmark p50 wall times between a baseline and a candidate
document produced by ``benchmarks/run_all.py``.  Exits non-zero when any
benchmark regressed by more than ``--threshold`` (default 25%), unless
``--warn-only`` is given.  Deterministic work counters (sequences
scanned, index bytes built) are compared exactly: a drift there means
the *work* changed, not just the machine's speed, and is reported even
when the wall time looks fine.

Usage::

    python benchmarks/compare.py benchmarks/baselines/BENCH_baseline.json \
        BENCH_ci.json --warn-only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

BENCH_SCHEMA = 6

#: benchmarks faster than this in the baseline are skipped for the wall
#: time gate — at sub-millisecond scale the signal is scheduler noise
DEFAULT_NOISE_FLOOR_MS = 2.0


def load(path: Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    schema = document.get("bench_schema")
    if schema != BENCH_SCHEMA:
        raise SystemExit(
            f"error: {path} has bench_schema={schema!r}, expected {BENCH_SCHEMA}"
        )
    if not isinstance(document.get("benchmarks"), dict):
        raise SystemExit(f"error: {path} has no 'benchmarks' section")
    return document


def compare(
    baseline: dict,
    candidate: dict,
    threshold: float,
    noise_floor_ms: float,
) -> tuple:
    """Returns (report lines, regression names, counter-drift names)."""
    lines: List[str] = []
    regressions: List[str] = []
    drifts: List[str] = []
    base_benchmarks = baseline["benchmarks"]
    cand_benchmarks = candidate["benchmarks"]

    header = (
        f"{'benchmark':28}  {'base p50':>10}  {'cand p50':>10}  {'delta':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(set(base_benchmarks) | set(cand_benchmarks)):
        base = base_benchmarks.get(name)
        cand = cand_benchmarks.get(name)
        if base is None:
            lines.append(f"{name:28}  {'—':>10}  new benchmark")
            continue
        if cand is None:
            lines.append(f"{name:28}  missing from candidate (!)")
            drifts.append(name)
            continue
        base_p50 = float(base["p50_ms"])
        cand_p50 = float(cand["p50_ms"])
        if base_p50 <= 0:
            delta_text = "n/a"
            delta = 0.0
        else:
            delta = (cand_p50 - base_p50) / base_p50
            delta_text = f"{delta * 100:+7.1f}%"
        flag = ""
        if base_p50 >= noise_floor_ms and delta > threshold:
            regressions.append(name)
            flag = "  REGRESSION"
        elif base_p50 < noise_floor_ms:
            flag = "  (below noise floor, not gated)"
        lines.append(
            f"{name:28}  {base_p50:8.1f}ms  {cand_p50:8.1f}ms  "
            f"{delta_text:>8}{flag}"
        )

        base_counters = base.get("counters") or {}
        cand_counters = cand.get("counters") or {}
        for counter in (
            "sequences_scanned",
            "index_bytes_built",
            "cells",
            "exact_hits",
            "derived_hits",
            "work_drift",
        ):
            if counter in base_counters and counter in cand_counters:
                if base_counters[counter] != cand_counters[counter]:
                    drifts.append(name)
                    lines.append(
                        f"{'':28}  counter drift: {counter} "
                        f"{base_counters[counter]} -> {cand_counters[counter]}"
                    )

    base_cross = (baseline.get("crossover") or {}).get("queryset_a") or {}
    cand_cross = (candidate.get("crossover") or {}).get("queryset_a") or {}
    if base_cross and cand_cross:
        lines.append(
            "crossover (QuerySet A): baseline step "
            f"{base_cross.get('crossover_step')} -> candidate step "
            f"{cand_cross.get('crossover_step')}"
        )
    return lines, regressions, sorted(set(drifts))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("candidate", type=Path, help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative p50 regression that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--noise-floor-ms",
        type=float,
        default=DEFAULT_NOISE_FLOOR_MS,
        help="baseline p50 below which wall time is not gated",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    lines, regressions, drifts = compare(
        baseline, candidate, args.threshold, args.noise_floor_ms
    )
    print("\n".join(lines))
    if drifts:
        print(f"\ncounter drift in: {', '.join(drifts)}")
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed past "
            f"{args.threshold * 100:.0f}%: {', '.join(regressions)}"
        )
        if args.warn_only:
            print("(warn-only mode: exiting 0)")
            return 0
        return 1
    print("\nno regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
