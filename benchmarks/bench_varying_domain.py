"""Varying domain size I (summarized in §5.2).

A larger symbol domain spreads occurrences over more patterns: the number
of counters (CB) and inverted lists (II) grows with I.  We reproduce the
sensitivity sweep and check the structural trends.
"""

import pytest

from repro import SOLAPEngine, build_index
from repro.bench import run_queryset_a, series_table
from repro.datagen.synthetic import base_spec
from repro.index.registry import base_template
from benchmarks.conftest import VARY_I_SERIES


@pytest.fixture(scope="module")
def runs(vary_i_dbs):
    out = {}
    for i, db in vary_i_dbs.items():
        out[("cb", i)], __ = run_queryset_a(db, "cb", n_queries=4)
        out[("ii", i)], __ = run_queryset_a(db, "ii", n_queries=4)
    return out


@pytest.mark.parametrize("i", VARY_I_SERIES)
@pytest.mark.parametrize("strategy", ["cb", "ii"])
def test_vary_domain(benchmark, vary_i_dbs, strategy, i):
    steps, __ = benchmark.pedantic(
        run_queryset_a,
        args=(vary_i_dbs[i], strategy),
        kwargs={"n_queries": 4},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["scanned"] = sum(s.sequences_scanned for s in steps)


def test_vary_domain_shape(benchmark, runs, vary_i_dbs, capsys):
    def render():
        return series_table(
            {
                f"{strategy.upper()} I={i}": runs[(strategy, i)]
                for strategy in ("cb", "ii")
                for i in VARY_I_SERIES
            },
            "Varying domain size: cumulative ms (cumulative sequences scanned)",
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")

    lists_by_i = {}
    for i, db in vary_i_dbs.items():
        engine = SOLAPEngine(db)
        spec = base_spec(("X", "Y"))
        groups = engine.sequence_groups(spec)
        index = build_index(
            groups.single_group(), base_template(spec.template), db.schema
        )
        lists_by_i[i] = len(index)
        # II still wins the iterative chain at every domain size.
        cb_total = sum(s.runtime_ms for s in runs[("cb", i)])
        ii_total = sum(s.runtime_ms for s in runs[("ii", i)])
        assert ii_total < cb_total, i
    sizes = sorted(lists_by_i)
    # Larger domains produce more inverted lists (sparser cuboids).
    assert lists_by_i[sizes[0]] < lists_by_i[sizes[-1]]
