"""Varying skew θ (summarized in §5.2).

Higher skew concentrates occurrences on few symbols: fewer, heavier
cuboid cells and fewer inverted lists.  The paper reports the results are
consistent with Section 4.2's discussion; here we check that consistency:
II keeps beating CB on the iterative chain at every skew level, and the
cell count decreases as θ grows.
"""

import pytest

from repro import SOLAPEngine
from repro.bench import run_queryset_a, series_table
from repro.datagen.synthetic import base_spec
from benchmarks.conftest import VARY_THETA_SERIES


@pytest.fixture(scope="module")
def runs(vary_theta_dbs):
    out = {}
    for theta, db in vary_theta_dbs.items():
        out[("cb", theta)], __ = run_queryset_a(db, "cb", n_queries=4)
        out[("ii", theta)], __ = run_queryset_a(db, "ii", n_queries=4)
    return out


@pytest.mark.parametrize("theta", VARY_THETA_SERIES)
@pytest.mark.parametrize("strategy", ["cb", "ii"])
def test_vary_theta(benchmark, vary_theta_dbs, strategy, theta):
    steps, __ = benchmark.pedantic(
        run_queryset_a,
        args=(vary_theta_dbs[theta], strategy),
        kwargs={"n_queries": 4},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["scanned"] = sum(s.sequences_scanned for s in steps)


def test_vary_theta_shape(benchmark, runs, vary_theta_dbs, capsys):
    def render():
        return series_table(
            {
                f"{strategy.upper()} theta={theta}": runs[(strategy, theta)]
                for strategy in ("cb", "ii")
                for theta in VARY_THETA_SERIES
            },
            "Varying skew: cumulative ms (cumulative sequences scanned)",
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")

    cells_by_theta = {}
    for theta, db in vary_theta_dbs.items():
        cuboid, __ = SOLAPEngine(db).execute(base_spec(("X", "Y")), "cb")
        cells_by_theta[theta] = len(cuboid)
        # II wins the chain at every skew.
        cb_total = sum(s.runtime_ms for s in runs[("cb", theta)])
        ii_total = sum(s.runtime_ms for s in runs[("ii", theta)])
        assert ii_total < cb_total, theta
    thetas = sorted(cells_by_theta)
    # More skew -> fewer distinct (X, Y) cells.
    assert cells_by_theta[thetas[0]] > cells_by_theta[thetas[-1]]
