"""Ablation — bitmap vs list intersection (Section 6, Performance).

The paper proposes bitmap-encoding the inverted lists so intersections
become bitwise-AND.  We join L2 with itself to candidate L3 under both
encodings and compare wall time and estimated storage.
"""

import pytest

from repro import SOLAPEngine, build_index
from repro.datagen.synthetic import base_spec
from repro.index.bitmap import BitmapIndex, bitmap_join
from repro.index.inverted import join_indices, prefix_template
from repro.index.registry import base_template


@pytest.fixture(scope="module")
def setup(synthetic_db_base):
    db = synthetic_db_base
    engine = SOLAPEngine(db)
    spec = base_spec(("X", "Y", "Z"))
    group = engine.sequence_groups(spec).single_group()
    pair = base_template(prefix_template(spec.template, 2))
    l2 = build_index(group, pair, db.schema)
    target = prefix_template(spec.template, 3)
    return db, l2, target


def test_list_join(benchmark, setup):
    db, l2, target = setup
    result = benchmark(join_indices, l2, l2, target, db.schema)
    benchmark.extra_info["lists"] = len(result)
    benchmark.extra_info["bytes"] = l2.size_bytes()


def test_bitmap_join(benchmark, setup):
    db, l2, target = setup
    bitmap = BitmapIndex.from_inverted(l2, sid_base=0)
    result = benchmark(bitmap_join, bitmap, bitmap, target, db.schema)
    benchmark.extra_info["lists"] = len(result)
    benchmark.extra_info["bytes"] = bitmap.size_bytes()


def test_bitmap_ablation_shape(benchmark, setup, capsys):
    db, l2, target = setup
    bitmap = BitmapIndex.from_inverted(l2, sid_base=0)

    def both():
        a = join_indices(l2, l2, target, db.schema)
        b = bitmap_join(bitmap, bitmap, target, db.schema)
        return a, b

    lists_result, bitmap_result = benchmark.pedantic(both, rounds=1, iterations=1)
    # Same candidates under both encodings.
    converted = bitmap_result.to_inverted()
    assert {k: set(v) for k, v in converted.lists.items()} == {
        k: set(v) for k, v in lists_result.lists.items()
    }
    # Storage: bitmaps win exactly where the paper claims — when the
    # domain is small, so lists are few and dense.  Build an L2 at the
    # 5-value supergroup level and compare; the fine-level L2 (sparse
    # lists over 100 symbols) is reported for contrast.
    from repro import SOLAPEngine, build_index
    from repro.datagen.synthetic import base_spec

    spec_small = base_spec(("X", "Y"), level="supergroup")
    engine = SOLAPEngine(setup[0])
    group = engine.sequence_groups(spec_small).single_group()
    dense = build_index(group, base_template(spec_small.template), setup[0].schema)
    dense_bitmap = BitmapIndex.from_inverted(dense, sid_base=0)
    assert dense_bitmap.size_bytes() < dense.size_bytes()
    with capsys.disabled():
        print(
            f"\nBitmap ablation: fine L2 {len(l2)} lists "
            f"({l2.size_bytes() / 1e6:.3f} MB lists vs "
            f"{bitmap.size_bytes() / 1e6:.3f} MB bitmaps — sparse, lists win); "
            f"supergroup L2 {len(dense)} lists "
            f"({dense.size_bytes() / 1e3:.1f} KB lists vs "
            f"{dense_bitmap.size_bytes() / 1e3:.1f} KB bitmaps — dense, "
            "bitmaps win)\n"
        )
