"""Ablation — cost-model strategy routing vs fixed strategies (Section
4.2.2's optimiser question).

Runs a mixed workload — a cold first query, repeats, APPEND follow-ups, a
roll-up — under three policies (always-CB, always-II, cost-routed) and
checks that the router is never much worse than the best fixed policy and
beats each fixed policy somewhere.
"""

import pytest

from repro import SOLAPEngine
from repro.core import operations as ops
from repro.datagen.synthetic import base_spec


def mixed_workload(db):
    """The query list: cold 2-step, repeat, APPENDs, roll-up, drill path."""
    schema = db.schema
    q1 = base_spec(("X", "Y"))
    q2 = q1  # repeat (repository hit under any policy)
    q3 = ops.append(q1, "Z", "symbol", "symbol")
    q4 = ops.append(q3, "A", "symbol", "symbol")
    q5 = ops.p_roll_up(q1, "Y", schema)
    return [q1, q2, q3, q4, q5]


def run_policy(db, policy):
    engine = SOLAPEngine(db)
    total_ms = 0.0
    total_scans = 0
    results = []
    for spec in mixed_workload(db):
        cuboid, stats = engine.execute(spec, policy)
        total_ms += stats.runtime_seconds * 1000
        total_scans += stats.sequences_scanned
        results.append(len(cuboid))
    return total_ms, total_scans, results


@pytest.mark.parametrize("policy", ["cb", "ii", "cost"])
def test_policy(benchmark, synthetic_db_base, policy):
    total_ms, total_scans, __ = benchmark.pedantic(
        run_policy, args=(synthetic_db_base, policy), rounds=1, iterations=1
    )
    benchmark.extra_info["scans"] = total_scans


def test_optimizer_shape(benchmark, synthetic_db_base, capsys):
    def run_all():
        return {
            policy: run_policy(synthetic_db_base, policy)
            for policy in ("cb", "ii", "cost")
        }

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nOptimizer ablation (mixed workload):")
        for policy, (ms, scans, __) in outcome.items():
            print(f"  {policy:>4}: {ms:8.1f} ms, {scans} sequences scanned")
        print()
    # identical answers under every policy
    answers = {policy: cells for policy, (__, __s, cells) in outcome.items()}
    assert answers["cb"] == answers["ii"] == answers["cost"]
    # the router scans no more than the worst fixed policy and is within
    # 1.5x of the best one
    scans = {policy: s for policy, (__, s, __c) in outcome.items()}
    assert scans["cost"] <= max(scans["cb"], scans["ii"])
    best = min(scans["cb"], scans["ii"])
    assert scans["cost"] <= best * 1.5 + 5000  # one cold scan of slack
