"""Service concurrency — QuerySet A at 1 / 4 / 16 concurrent sessions.

Measures end-to-end throughput (queries/second) and per-query latency of
the :class:`~repro.service.QueryService` serving N concurrent session
clients, against the baseline of N independent bare engines run back to
back.  Every client walks the same QuerySet A slice + APPEND chain, which
is the paper's iterative-exploration shape: under the service the clients
share one engine — sequence cache, cuboid repository, and index
registries — so all but the first execution of each chain step is served
from shared state, while the bare baseline pays the full scan cost once
per client.

Shape claims:

* the service completes N>1 identical sessions with *fewer* total
  sequence scans than N bare engines (shared caching);
* at 4 concurrent sessions service throughput is at least 2x the bare
  baseline (the ISSUE acceptance bar);
* p50 latency stays bounded: the histogram records every query and the
  cache-hit tail is far faster than the cold head.

The module doubles as the CI smoke benchmark, so the dataset is small
(D=800) and the chain short; scale ``SERVICE_BENCH_D`` up for real
measurements.  The execution backend of the sharded CB scans is taken
from ``SOLAP_SERVICE_BACKEND`` (serial / thread / process; default
thread), which is how the CI matrix exercises both pool kinds.

Run as a script for the backend comparison table::

    PYTHONPATH=src python benchmarks/bench_service_concurrency.py \
        --backend all --workers 4

which times the same pinned-seed scan-bound workload under every backend
and prints per-query times and speedups over serial.  Process-backend
speedup needs real cores: on a single-CPU host the table still verifies
bit-identical results, it just cannot show a win.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.bench.workloads import _CHAIN_SYMBOLS
from repro.core import operations as ops
from repro.core.engine import SOLAPEngine
from repro.datagen import SyntheticConfig, generate_event_database
from repro.datagen.synthetic import base_spec
from repro.service import QueryService, ServiceConfig

#: sequences in the benchmark dataset (paper scale: 100k-1M)
SERVICE_BENCH_D = 800
#: length of each client's QuerySet A chain
CHAIN_LENGTH = 4
#: session counts measured (the ISSUE's 1 / 4 / 16 series)
SESSION_SERIES = (1, 4, 16)


@pytest.fixture(scope="module")
def service_db():
    return generate_event_database(
        SyntheticConfig(I=100, L=20, theta=0.9, D=SERVICE_BENCH_D)
    )


@pytest.fixture(scope="module")
def chain_specs(service_db):
    """The QuerySet A spec chain, derived once so every client runs the
    exact same queries (bare and service runs stay comparable)."""
    engine = SOLAPEngine(service_db, use_repository=False)
    spec = base_spec(("X", "Y"))
    specs = [spec]
    for index in range(CHAIN_LENGTH - 1):
        cuboid, __ = engine.execute(spec, "cb")
        top = cuboid.argmax()
        if top is None:
            break
        __, cell_key, __unused = top
        for symbol, value in zip(spec.template.symbols, cell_key):
            spec = ops.slice_pattern(spec, symbol.name, value)
        spec = ops.append(spec, _CHAIN_SYMBOLS[index], "symbol", "symbol")
        specs.append(spec)
    return specs


def run_bare(db, specs, n_sessions):
    """N clients on N independent engines, back to back (no sharing)."""
    scanned = 0
    for __ in range(n_sessions):
        engine = SOLAPEngine(db)  # fresh caches per client
        for spec in specs:
            __, stats = engine.execute(spec, "cb")
            scanned += stats.sequences_scanned
    return scanned


def run_service(db, specs, n_sessions, backend=None):
    """N client threads against one shared QueryService."""
    config = ServiceConfig(
        max_workers=2,
        max_concurrent=min(n_sessions, 4),
        queue_depth=max(n_sessions, 16),
        executor_backend=backend
        or os.environ.get("SOLAP_SERVICE_BACKEND", "thread"),
    )
    service = QueryService(db, config)

    def client():
        for spec in specs:
            service.execute(spec, "cb")

    try:
        threads = [
            threading.Thread(target=client) for __ in range(n_sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = service.snapshot()
    finally:
        service.shutdown()
    return snapshot


@pytest.mark.parametrize("n_sessions", SESSION_SERIES)
def test_bare_baseline(benchmark, service_db, chain_specs, n_sessions):
    scanned = benchmark.pedantic(
        run_bare,
        args=(service_db, chain_specs, n_sessions),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["sequences_scanned"] = scanned
    benchmark.extra_info["queries"] = n_sessions * len(chain_specs)


@pytest.mark.parametrize("n_sessions", SESSION_SERIES)
def test_service_sessions(benchmark, service_db, chain_specs, n_sessions):
    snapshot = benchmark.pedantic(
        run_service,
        args=(service_db, chain_specs, n_sessions),
        rounds=1,
        iterations=1,
    )
    counters = snapshot["counters"]
    assert counters["queries_ok"] == n_sessions * len(chain_specs)
    assert counters["queries_failed"] == 0
    assert counters["overload_rejected_total"] == 0
    benchmark.extra_info["queries"] = counters["queries_ok"]
    benchmark.extra_info["p50_ms"] = snapshot["latency"]["p50_seconds"] * 1e3
    benchmark.extra_info["p99_ms"] = snapshot["latency"]["p99_seconds"] * 1e3
    benchmark.extra_info["cache_hits"] = counters["strategy_cache"]


def test_service_throughput_vs_bare(service_db, chain_specs, capsys):
    """The ISSUE acceptance bar: >= 2x throughput at 4 concurrent sessions."""
    import time

    n_sessions = 4
    n_queries = n_sessions * len(chain_specs)

    start = time.perf_counter()
    bare_scanned = run_bare(service_db, chain_specs, n_sessions)
    bare_seconds = time.perf_counter() - start

    # The 2x bar measures shared caching, so pin the thread backend: on a
    # single-CPU host the process pool's IPC overhead (not a caching
    # property) would eat into the margin.
    start = time.perf_counter()
    snapshot = run_service(service_db, chain_specs, n_sessions, backend="thread")
    service_seconds = time.perf_counter() - start

    bare_qps = n_queries / bare_seconds
    service_qps = n_queries / service_seconds
    repo = snapshot["engine"]["repository"]
    repo_total = repo["hits"] + repo["misses"]
    repo_ratio = repo["hits"] / repo_total if repo_total else 0.0
    with capsys.disabled():
        print(
            f"\nservice concurrency (D={SERVICE_BENCH_D}, "
            f"{n_sessions} sessions x {len(chain_specs)} queries):\n"
            f"  bare    {bare_qps:8.1f} q/s  ({bare_seconds * 1e3:.0f} ms, "
            f"{bare_scanned} sequences scanned)\n"
            f"  service {service_qps:8.1f} q/s  ({service_seconds * 1e3:.0f} ms, "
            f"repository hit-ratio {repo_ratio:.2f})\n"
        )

    # Clients 2..N are served from the shared cuboid repository.
    assert snapshot["counters"]["strategy_cache"] >= (
        (n_sessions - 1) * len(chain_specs)
    )
    assert service_qps >= 2.0 * bare_qps


def test_backends_agree(service_db, chain_specs):
    """Thread and process scans return the serial engine's exact cells."""
    spec = chain_specs[0]
    expected, __ = SOLAPEngine(service_db, use_repository=False).execute(
        spec, "cb"
    )
    for backend in ("thread", "process"):
        config = ServiceConfig(
            max_workers=2,
            executor_backend=backend,
            parallel_scan_threshold=64,
        )
        service = QueryService(
            SOLAPEngine(service_db, use_repository=False), config
        )
        try:
            cuboid, stats = service.execute(spec, "cb")
        finally:
            service.close()
        assert cuboid.cells == expected.cells, backend
        assert stats.extra.get("scan_backend") == backend


# ---------------------------------------------------------------------------
# Script mode: the backend comparison table
# ---------------------------------------------------------------------------

def _bench_one_backend(db, spec, backend, workers, repeat):
    """Per-query seconds (and the result) for one backend configuration."""
    import time

    config = ServiceConfig(
        max_workers=workers,
        executor_backend=backend,
        parallel_scan_threshold=64,
    )
    # use_repository=False keeps every repeat scan-bound (no cuboid cache)
    service = QueryService(SOLAPEngine(db, use_repository=False), config)
    try:
        service.execute(spec, "cb")  # warm: sequence formation + pools
        start = time.perf_counter()
        for __ in range(repeat):
            cuboid, stats = service.execute(spec, "cb")
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    return elapsed / repeat, cuboid, stats


def main(argv=None):
    """Compare scan backends on a pinned-seed scan-bound workload."""
    import argparse

    parser = argparse.ArgumentParser(
        description="sharded CB scan backend comparison"
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "all"),
        default="all",
        help="backend(s) to time (serial always runs as the baseline)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--sequences", type=int, default=SERVICE_BENCH_D,
        help="synthetic dataset size D (pinned seed)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timed scans per backend"
    )
    args = parser.parse_args(argv)

    db = generate_event_database(
        SyntheticConfig(I=100, L=20, theta=0.9, D=args.sequences, seed=42)
    )
    spec = base_spec(("X", "Y"))
    if args.backend == "all":
        backends = ["serial", "thread", "process"]
    elif args.backend == "serial":
        backends = ["serial"]
    else:
        backends = ["serial", args.backend]

    print(
        f"backend comparison: D={args.sequences}, seed=42, "
        f"workers={args.workers}, repeat={args.repeat}, "
        f"cpus={os.cpu_count()}"
    )
    results = {}
    baseline_cells = None
    for backend in backends:
        seconds, cuboid, stats = _bench_one_backend(
            db, spec, backend, args.workers, args.repeat
        )
        results[backend] = seconds
        if baseline_cells is None:
            baseline_cells = cuboid.cells
        elif cuboid.cells != baseline_cells:
            print(f"FAIL: {backend} cells differ from serial")
            return 1
        label = stats.extra.get("scan_backend", "serial")
        speedup = results["serial"] / seconds if seconds else float("inf")
        print(
            f"  {backend:8s} {seconds * 1e3:9.1f} ms/query  "
            f"{speedup:5.2f}x vs serial  (scan={label}, "
            f"shards={stats.extra.get('parallel_shards', 1)})"
        )
    print("all backends returned bit-identical cells")
    if os.cpu_count() == 1 and "process" in results:
        print(
            "note: single-CPU host — process-backend speedup needs "
            "multiple cores"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
