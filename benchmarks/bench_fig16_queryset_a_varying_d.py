"""Figure 16 — QuerySet A (slice + APPEND chain), varying D.

Paper's figure: cumulative running time of QA1..QA5 on
I100.L20.θ0.9.D{100k,500k,1000k}, CB vs II, annotated with cumulative
sequences scanned.  II precomputes the base size-2 index (0.43 s - 3.9 s,
7.3 MB - 72.2 MB in the paper).

Shape claims:

* both strategies scale linearly in D (checked by ratio of totals);
* II beats CB on every dataset (cumulative over the chain);
* CB's cumulative scan count is 5 x D; II's is a tiny fraction of D after
  the precomputed first query.
"""

import pytest

from repro.bench import run_queryset_a, series_table
from benchmarks.conftest import FIG16_D_SERIES


@pytest.fixture(scope="module")
def all_runs(synthetic_dbs):
    runs = {}
    for d, db in synthetic_dbs.items():
        runs[("cb", d)], __ = run_queryset_a(db, "cb", n_queries=5)
        runs[("ii", d)], __ = run_queryset_a(db, "ii", n_queries=5)
    return runs


@pytest.mark.parametrize("d", FIG16_D_SERIES)
def test_fig16_cb(benchmark, synthetic_dbs, d):
    steps, __ = benchmark.pedantic(
        run_queryset_a,
        args=(synthetic_dbs[d], "cb"),
        kwargs={"n_queries": 5},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cumulative_scanned"] = sum(
        s.sequences_scanned for s in steps
    )


@pytest.mark.parametrize("d", FIG16_D_SERIES)
def test_fig16_ii(benchmark, synthetic_dbs, d):
    steps, pre = benchmark.pedantic(
        run_queryset_a,
        args=(synthetic_dbs[d], "ii"),
        kwargs={"n_queries": 5},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cumulative_scanned"] = sum(
        s.sequences_scanned for s in steps
    )
    benchmark.extra_info["precompute_scanned"] = pre.sequences_scanned


def test_fig16_shape(benchmark, all_runs, capsys):
    def render():
        return series_table(
            {
                f"{strategy.upper()} D={d}": all_runs[(strategy, d)]
                for strategy in ("cb", "ii")
                for d in FIG16_D_SERIES
            },
            "Figure 16 (reproduced): QuerySet A cumulative ms (cumulative "
            "sequences scanned)",
        )

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")

    for d in FIG16_D_SERIES:
        cb = all_runs[("cb", d)]
        ii = all_runs[("ii", d)]
        # CB scans the whole dataset on every one of the 5 queries.
        assert sum(s.sequences_scanned for s in cb) == 5 * d
        # II answers QA1 from the precomputed index (0 scans) and follow-up
        # queries from joins: far below one full rescan in total.
        assert ii[0].sequences_scanned == 0
        assert sum(s.sequences_scanned for s in ii) < d
        # II wins the cumulative chain.
        assert sum(s.runtime_ms for s in ii) < sum(s.runtime_ms for s in cb)

    # Linear scaling in D (ratio of largest to smallest within 3x of the
    # D ratio — generous to absorb constant factors).
    d_lo, d_hi = FIG16_D_SERIES[0], FIG16_D_SERIES[-1]
    cb_ratio = sum(s.runtime_ms for s in all_runs[("cb", d_hi)]) / max(
        sum(s.runtime_ms for s in all_runs[("cb", d_lo)]), 1e-9
    )
    assert cb_ratio < (d_hi / d_lo) * 3
